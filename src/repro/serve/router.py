"""Health-driven HTTP router over N serving replicas.

The :class:`Router` is the cluster's front door: it owns *membership*
(which replicas exist and whether they are trustworthy) and *routing*
(which replica gets the next request), while process supervision lives
in :class:`~repro.serve.cluster.ReplicaSet`.  The engine underneath is
pure and deterministic, so retrying a request on a different replica is
invisible to the client — responses are relayed as the replica's raw
bytes, byte-identical no matter which replica answered.

Membership state machine (driven by periodic ``/healthz`` probes)::

            probe ok                   probe fail
    [ok] <------------ [suspect] ------------------+
      |    probe fail       ^                      | x eject_after
      +-------------------- | -----+               v
                            |      |          [ejected]
            x rejoin_after  |      |               |
    [rejoining] ------------+      |    probe ok   |
        ^  |                       |               |
        |  +-- probe fail ---------+---------------+
        +------------------------------------------+

``ok`` and ``suspect`` members receive traffic (suspect = deprioritized
but routable — one blip must not eject a healthy replica); ``ejected``
members only receive probes.  A respawned replica re-enters at
``rejoining`` and must pass ``rejoin_after`` consecutive probes before
carrying full weight.

On top of membership, each member carries a **circuit breaker**
(closed / open / half-open): consecutive *request* failures — which a
probe cycle may be too slow to see — open the breaker, shedding load
from a sick replica immediately; after ``breaker_cooldown`` one
half-open trial request probes it, and a success closes the breaker.

Routing is least-loaded (router-tracked inflight per member, round-robin
tie-break) with bounded failover: connection errors and 429/500/503
responses move the request to the next-best member after a jittered
backoff, never revisiting a member within one request.  400/404/504 are
relayed immediately — they are the *request's* fault (or its deadline),
not the replica's.  With ``hedge_ms`` set, a request still unanswered
after that many milliseconds is duplicated to a second replica and the
first answer wins (tail-latency insurance priced at one extra request).
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from concurrent.futures import (
    FIRST_COMPLETED,
    ThreadPoolExecutor,
    wait,
)
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.metrics import MetricsRegistry
from .http import jittered_retry_after

__all__ = [
    "Router",
    "RouterConfig",
    "MEMBER_STATES",
    "BREAKER_STATES",
]

#: Membership states a replica walks through (see module docstring).
MEMBER_STATES = ("ok", "suspect", "ejected", "rejoining")

#: Circuit-breaker states.
BREAKER_STATES = ("closed", "open", "half_open")

#: Response statuses that move a request to another replica.  429/503
#: mean "this replica can't take it right now"; 500 covers injected
#: chaos faults and genuine replica bugs — the deterministic engine
#: makes the retry safe either way.
_FAILOVER_STATUSES = frozenset({429, 500, 503})

#: Headers copied from the client request to the replica request.
_FORWARD_HEADERS = ("Content-Type", "X-Deadline-Ms")

#: Response headers relayed from the replica back to the client.
_RELAY_HEADERS = ("Content-Type", "Retry-After")


@dataclass(frozen=True)
class RouterConfig:
    """Knobs of one router.

    Membership: replicas are probed every ``probe_interval`` seconds
    (timeout ``probe_timeout``); ``eject_after`` consecutive failures
    walk ok -> suspect -> ejected, ``rejoin_after`` consecutive
    successes walk ejected -> rejoining -> ok.

    Failover: up to ``max_failover`` *additional* replicas are tried
    per request, sleeping a jittered exponential backoff (base
    ``failover_backoff``, cap ``failover_backoff_cap``) between
    attempts.

    Breaker: ``breaker_threshold`` consecutive request failures open a
    member's breaker; after ``breaker_cooldown`` seconds one half-open
    trial request is allowed through.

    Hedging: ``hedge_ms`` (``None`` = off) duplicates a request to a
    second replica once the primary has been silent that long.
    """

    probe_interval: float = 0.25
    probe_timeout: float = 2.0
    eject_after: int = 3
    rejoin_after: int = 2
    max_failover: int = 3
    failover_backoff: float = 0.02
    failover_backoff_cap: float = 0.25
    breaker_threshold: int = 5
    breaker_cooldown: float = 1.0
    hedge_ms: Optional[float] = None
    request_timeout: float = 60.0
    retry_after: float = 1.0

    def __post_init__(self) -> None:
        if self.eject_after < 1:
            raise ValueError("eject_after must be >= 1")
        if self.rejoin_after < 1:
            raise ValueError("rejoin_after must be >= 1")
        if self.max_failover < 0:
            raise ValueError("max_failover must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.hedge_ms is not None and self.hedge_ms <= 0:
            raise ValueError("hedge_ms must be > 0 (or None to disable)")


class CircuitBreaker:
    """Closed / open / half-open breaker for one member.

    Counts *consecutive* request failures (connection errors, 5xx).
    429 does not count — an admission-full replica is healthy, just
    busy.  All methods are called under the router's membership lock.
    """

    def __init__(self, threshold: int, cooldown: float) -> None:
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._trial_inflight = False

    def allow(self) -> bool:
        """May a request go to this member right now?  Transitions
        open -> half_open when the cooldown has elapsed, and claims the
        single half-open trial slot when it returns True."""
        if self.state == "closed":
            return True
        if self.state == "open":
            if time.monotonic() - self.opened_at < self.cooldown:
                return False
            self.state = "half_open"
            self._trial_inflight = False
        # half_open: exactly one trial request probes the member.
        if self._trial_inflight:
            return False
        self._trial_inflight = True
        return True

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self._trial_inflight = False

    def record_failure(self) -> None:
        self._trial_inflight = False
        if self.state == "half_open":
            self.state = "open"
            self.opened_at = time.monotonic()
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.threshold:
            self.state = "open"
            self.opened_at = time.monotonic()


class _Member:
    """Router-side view of one replica."""

    def __init__(self, replica_id: str, url: str,
                 breaker: CircuitBreaker) -> None:
        self.id = replica_id
        self.url = url
        self.state = "rejoining"  # must earn trust via probes
        self.breaker = breaker
        self.admitted = False  # has it ever reached "ok"?
        self.inflight = 0
        self.probe_failures = 0   # consecutive
        self.probe_successes = 0  # consecutive
        self.probe_failures_total = 0
        self.last_status: Optional[str] = None  # replica-reported

    def routable(self) -> bool:
        return self.state in ("ok", "suspect")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "url": self.url,
            "state": self.state,
            "breaker": self.breaker.state,
            "inflight": self.inflight,
            "probe_failures": self.probe_failures,
            "probe_failures_total": self.probe_failures_total,
            "last_status": self.last_status,
        }


#: A relayed response: (HTTP status, headers to relay, raw body bytes).
_Response = Tuple[int, Dict[str, str], bytes]


class Router:
    """Route requests across replicas; own membership via health probes.

    ``endpoints`` is a static list of replica URLs (or ``(id, url)``
    pairs) for externally managed replicas; ``replica_set`` attaches a
    :class:`~repro.serve.cluster.ReplicaSet` whose live endpoints are
    re-read before every probe round, so respawned replicas (same id,
    new port) rejoin automatically and quarantined ones drop out.

    Deterministic tests drive the membership machine with
    :meth:`probe_once` instead of starting the background prober.
    """

    def __init__(
        self,
        endpoints: Sequence[Union[str, Tuple[str, str]]] = (),
        replica_set=None,
        config: Optional[RouterConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config or RouterConfig()
        self._replica_set = replica_set
        self._static: List[Tuple[str, str]] = []
        for position, endpoint in enumerate(endpoints):
            if isinstance(endpoint, str):
                self._static.append((f"r{position}", endpoint))
            else:
                replica_id, url = endpoint
                self._static.append((str(replica_id), str(url)))
        self._lock = threading.Lock()
        self._members: "Dict[str, _Member]" = {}
        self._rr = 0  # round-robin tie-break cursor
        self._draining = False
        self._stop = threading.Event()
        self._prober: Optional[threading.Thread] = None
        self._hedge_pool: Optional[ThreadPoolExecutor] = None
        self._http = None
        # Jitter for failover backoff: seeded per-router so chaos runs
        # replay, distinct draws so concurrent retries fan out in time.
        self._backoff_rng = random.Random(0xF417)
        self._build_metrics(metrics)
        self._refresh_membership()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def _build_metrics(self, metrics: Optional[MetricsRegistry]) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "repro_router_requests_total",
            "Client requests accepted by the router (before routing).")
        self._m_responses = self.metrics.counter(
            "repro_router_responses_total",
            "Responses returned to clients, by HTTP status code.",
            labelnames=("code",))
        self._m_failovers = self.metrics.counter(
            "repro_router_failovers_total",
            "Request attempts moved to another replica after a "
            "connection error or failover-able status (429/500/503).")
        self._m_ejections = self.metrics.counter(
            "repro_router_ejections_total",
            "Members ejected from the routable set, by replica.",
            labelnames=("replica",))
        self._m_rejoins = self.metrics.counter(
            "repro_router_rejoins_total",
            "Members readmitted to the routable set, by replica.",
            labelnames=("replica",))
        self._m_hedges = self.metrics.counter(
            "repro_router_hedges_total",
            "Hedged duplicate requests, by outcome (won = the hedge "
            "answered first, lost = the primary did).",
            labelnames=("outcome",))
        self._m_sheds = self.metrics.counter(
            "repro_router_sheds_total",
            "Requests refused with 503 because no routable replica "
            "remained (or the router was draining).",
            labelnames=("reason",))
        self._m_probe_failures = self.metrics.counter(
            "repro_router_probe_failures_total",
            "Failed health probes, by replica.",
            labelnames=("replica",))
        self._m_latency = self.metrics.histogram(
            "repro_router_request_latency_seconds",
            "Wall time from router accept to response, per request.")
        self._m_state = self.metrics.gauge(
            "repro_router_replica_state",
            "Membership one-hot: 1 for the replica's current state.",
            labelnames=("replica", "state"))
        self._m_breaker = self.metrics.gauge(
            "repro_router_breaker_state",
            "Circuit-breaker one-hot: 1 for the replica's current state.",
            labelnames=("replica", "state"))
        self._m_inflight = self.metrics.gauge(
            "repro_router_replica_inflight",
            "Requests the router currently has outstanding per replica.",
            labelnames=("replica",))
        self._m_respawns = self.metrics.counter(
            "repro_router_replica_respawns_total",
            "Replica process respawns performed by the attached "
            "ReplicaSet, by replica.",
            labelnames=("replica",))
        self.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        """Scrape-time mirror of membership/breaker/supervision state."""
        with self._lock:
            members = list(self._members.values())
            snapshots = [member.as_dict() for member in members]
        self._m_state.clear()
        self._m_breaker.clear()
        self._m_inflight.clear()
        for snap in snapshots:
            for state in MEMBER_STATES:
                self._m_state.set(
                    1.0 if snap["state"] == state else 0.0,
                    replica=snap["id"], state=state)
            for state in BREAKER_STATES:
                self._m_breaker.set(
                    1.0 if snap["breaker"] == state else 0.0,
                    replica=snap["id"], state=state)
            self._m_inflight.set(float(snap["inflight"]),
                                 replica=snap["id"])
            self._m_probe_failures.set_to(
                float(snap["probe_failures_total"]), replica=snap["id"])
        if self._replica_set is not None:
            for replica in self._replica_set.stats()["replicas"]:
                self._m_respawns.set_to(float(replica["restarts"]),
                                        replica=replica["id"])

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _endpoints(self) -> List[Tuple[str, str]]:
        if self._replica_set is not None:
            return list(self._replica_set.endpoints())
        return list(self._static)

    def _refresh_membership(self) -> None:
        """Reconcile members against the current endpoint list: new ids
        join at ``rejoining``, respawned ids (same id, new URL) restart
        their walk at ``rejoining``, vanished ids (quarantined/stopped
        replicas) are dropped."""
        endpoints = self._endpoints()
        with self._lock:
            seen = set()
            for replica_id, url in endpoints:
                seen.add(replica_id)
                member = self._members.get(replica_id)
                if member is None:
                    self._members[replica_id] = _Member(
                        replica_id, url,
                        CircuitBreaker(self.config.breaker_threshold,
                                       self.config.breaker_cooldown))
                elif member.url != url:
                    # Respawned under a new port: same identity, zero
                    # trust — walk rejoining -> ok again.
                    member.url = url
                    member.state = "rejoining"
                    member.probe_failures = 0
                    member.probe_successes = 0
                    member.breaker.record_success()
            for replica_id in list(self._members):
                if replica_id not in seen:
                    del self._members[replica_id]

    def probe_once(self) -> Dict[str, str]:
        """One synchronous probe round over all members; returns
        ``{replica_id: membership state}`` after the round.  The
        background prober calls this every ``probe_interval``."""
        self._refresh_membership()
        with self._lock:
            targets = [(member.id, member.url)
                       for member in self._members.values()]
        results = {}
        for replica_id, url in targets:
            results[replica_id] = self._probe(url)
        with self._lock:
            for replica_id, (alive, status) in results.items():
                member = self._members.get(replica_id)
                if member is None:  # dropped mid-round
                    continue
                member.last_status = status
                if alive:
                    self._probe_success(member)
                else:
                    self._probe_failure(member)
            return {member.id: member.state
                    for member in self._members.values()}

    def _probe(self, url: str) -> Tuple[bool, Optional[str]]:
        """GET /healthz; healthy iff HTTP 200 (the replica answers 200
        only while serving: ok/degraded)."""
        try:
            with urllib.request.urlopen(
                    url + "/healthz",
                    timeout=self.config.probe_timeout) as response:
                payload = json.loads(response.read())
                return True, payload.get("status")
        except urllib.error.HTTPError as exc:
            try:
                status = json.loads(exc.read()).get("status")
            except Exception:  # noqa: BLE001 — probe must not raise
                status = None
            return False, status
        except Exception:  # noqa: BLE001 — connection refused/timeout
            return False, None

    def _probe_success(self, member: _Member) -> None:
        member.probe_failures = 0
        member.probe_successes += 1
        if member.state == "suspect":
            member.state = "ok"
        elif member.state == "ejected":
            member.state = "rejoining"
            member.probe_successes = 1
        elif member.state == "rejoining" and \
                member.probe_successes >= self.config.rejoin_after:
            member.state = "ok"
            if member.admitted:  # first admission is not a *re*-join
                self._m_rejoins.inc(replica=member.id)
            member.admitted = True

    def _probe_failure(self, member: _Member) -> None:
        member.probe_successes = 0
        member.probe_failures += 1
        member.probe_failures_total += 1
        if member.state == "ok":
            member.state = "suspect"
        elif member.state == "suspect" and \
                member.probe_failures >= self.config.eject_after:
            member.state = "ejected"
            self._m_ejections.inc(replica=member.id)
        elif member.state == "rejoining":
            member.state = "ejected"
            self._m_ejections.inc(replica=member.id)

    def _prober_loop(self) -> None:
        while not self._stop.wait(self.config.probe_interval):
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001 — prober must survive
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Router":
        """Run one synchronous probe round (so freshly started replicas
        are routable immediately) and start the background prober."""
        # New members need rejoin_after consecutive successes;
        # synchronous rounds at startup avoid an unroutable window.
        for _ in range(max(1, self.config.rejoin_after)):
            self.probe_once()
        if self._prober is None:
            self._prober = threading.Thread(
                target=self._prober_loop, name="repro-router-prober",
                daemon=True)
            self._prober.start()
        if self.config.hedge_ms is not None and self._hedge_pool is None:
            size = max(4, 2 * max(1, len(self._members)))
            self._hedge_pool = ThreadPoolExecutor(
                max_workers=size, thread_name_prefix="repro-router-hedge")
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._prober is not None:
            self._prober.join(timeout=10)
            self._prober = None
        if self._http is not None:
            self._http.stop()
            self._http = None
        if self._hedge_pool is not None:
            self._hedge_pool.shutdown(wait=False, cancel_futures=True)
            self._hedge_pool = None

    def __enter__(self) -> "Router":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def begin_drain(self) -> None:
        """Refuse new requests with 503 + Retry-After (in-flight ones
        finish).  Replica-side drains are the ReplicaSet's job — the
        CLI propagates both."""
        with self._lock:
            self._draining = True

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _acquire(self, exclude: set) -> Optional[_Member]:
        """Pick the least-loaded routable member not in ``exclude``
        whose breaker admits a request; reserve an inflight slot."""
        with self._lock:
            candidates = [member for member in self._members.values()
                          if member.routable() and member.id not in exclude]
            # ok before suspect, then least-loaded, then round-robin.
            order = {member.id: position for position, member
                     in enumerate(self._members.values())}
            members_count = max(1, len(self._members))
            candidates.sort(key=lambda member: (
                0 if member.state == "ok" else 1,
                member.inflight,
                (order[member.id] - self._rr) % members_count,
            ))
            for member in candidates:
                if member.breaker.allow():
                    member.inflight += 1
                    self._rr += 1
                    return member
            return None

    def _release(self, member: _Member, success: bool,
                 breaker_neutral: bool = False) -> None:
        with self._lock:
            member.inflight = max(0, member.inflight - 1)
            if breaker_neutral:
                # 429: the replica is healthy, just full — don't let
                # admission pressure trip the breaker, but don't clear
                # an earlier failure streak either.
                with_trial = member.breaker._trial_inflight
                member.breaker._trial_inflight = False
                if with_trial and member.breaker.state == "half_open":
                    member.breaker.state = "open"
                    member.breaker.opened_at = time.monotonic()
            elif success:
                member.breaker.record_success()
            else:
                member.breaker.record_failure()

    def _send(self, member: _Member, method: str, path: str, body: bytes,
              headers: Dict[str, str]) -> Optional[_Response]:
        """One attempt against one replica.  ``None`` = connection-level
        failure (no HTTP response at all)."""
        request = urllib.request.Request(
            member.url + path, data=body if method == "POST" else None,
            headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.config.request_timeout) as response:
                relay = {name: response.headers[name]
                         for name in _RELAY_HEADERS
                         if response.headers.get(name)}
                return response.status, relay, response.read()
        except urllib.error.HTTPError as exc:
            relay = {name: exc.headers[name] for name in _RELAY_HEADERS
                     if exc.headers and exc.headers.get(name)}
            return exc.code, relay, exc.read()
        except Exception:  # noqa: BLE001 — refused/reset/timeout
            return None

    def _backoff(self, attempt: int) -> float:
        base = min(self.config.failover_backoff * (2 ** attempt),
                   self.config.failover_backoff_cap)
        with self._lock:
            jitter = 0.5 + self._backoff_rng.random()  # [0.5, 1.5)
        return base * jitter

    def _shed(self, reason: str) -> _Response:
        self._m_sheds.inc(reason=reason)
        message = ("router is draining; retry against another cluster"
                   if reason == "draining"
                   else "no healthy replica available")
        body = json.dumps({"error": message}).encode()
        return 503, {
            "Content-Type": "application/json",
            "Retry-After": jittered_retry_after(self.config.retry_after),
        }, body

    def _forward_attempts(self, method: str, path: str, body: bytes,
                          headers: Dict[str, str],
                          tried: set) -> _Response:
        """The failover loop: walk distinct replicas until one answers
        with a non-failover status or the attempt budget runs out.
        ``tried`` is shared with a hedge, which excludes it."""
        last_response: Optional[_Response] = None
        for attempt in range(self.config.max_failover + 1):
            member = self._acquire(exclude=tried)
            if member is None:
                break
            tried.add(member.id)
            if attempt > 0:
                self._m_failovers.inc()
            response = self._send(member, method, path, body, headers)
            if response is None:
                self._release(member, success=False)
            else:
                status = response[0]
                if status not in _FAILOVER_STATUSES:
                    # 2xx, or the request's own fault (400/404/504):
                    # the replica did its job — relay verbatim.
                    self._release(member, success=True)
                    return response
                self._release(member, success=(status == 429),
                              breaker_neutral=(status == 429))
                last_response = response
            if attempt < self.config.max_failover:
                time.sleep(self._backoff(attempt))
        if last_response is not None:
            return last_response
        return self._shed("no_healthy_replicas")

    def forward(self, path: str, body: bytes = b"",
                headers: Optional[Dict[str, str]] = None,
                method: str = "POST") -> _Response:
        """Route one client request; returns ``(status, headers, raw
        body bytes)`` — the winning replica's bytes, unmodified."""
        started = time.monotonic()
        self._m_requests.inc()
        with self._lock:
            draining = self._draining
        if draining:
            response = self._shed("draining")
        else:
            headers = dict(headers or {})
            headers.setdefault("Content-Type", "application/json")
            tried: set = set()
            if self.config.hedge_ms is None or self._hedge_pool is None:
                response = self._forward_attempts(
                    method, path, body, headers, tried)
            else:
                response = self._forward_hedged(
                    method, path, body, headers, tried)
        self._m_responses.inc(code=str(response[0]))
        self._m_latency.observe(time.monotonic() - started)
        return response

    def _forward_hedged(self, method: str, path: str, body: bytes,
                        headers: Dict[str, str], tried: set) -> _Response:
        """Primary attempt; if silent past ``hedge_ms``, duplicate to a
        replica the primary has not touched and take the first answer.
        The loser is cancelled if unstarted, else runs to completion
        and is discarded — the engine is deterministic and replicas are
        stateless, so a duplicated request changes nothing."""
        pool = self._hedge_pool
        primary = pool.submit(self._forward_attempts, method, path, body,
                              headers, tried)
        done, _ = wait([primary], timeout=self.config.hedge_ms / 1e3)
        if done:
            return primary.result()
        # `tried` is being mutated by the primary thread; a stale copy
        # only risks the hedge landing on the primary's replica, which
        # is wasteful but harmless.
        hedge_tried = set(tried)
        hedge = pool.submit(self._forward_attempts, method, path, body,
                            headers, hedge_tried)
        done, pending = wait([primary, hedge],
                             timeout=self.config.request_timeout,
                             return_when=FIRST_COMPLETED)
        winner = hedge if hedge in done and primary not in done else primary
        loser = primary if winner is hedge else hedge
        if winner is hedge:
            self._m_hedges.inc(outcome="won")
        else:
            self._m_hedges.inc(outcome="lost")
        loser.cancel()
        if winner not in done:  # both timed out: wait on the primary
            return winner.result()
        return winner.result()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Aggregate ``/healthz``: ``ok`` (every member routable and
        ok), ``degraded`` (some routable member), ``unhealthy`` (none),
        ``draining``; plus the per-member table."""
        with self._lock:
            draining = self._draining
            members = [member.as_dict()
                       for member in self._members.values()]
        routable = sum(1 for member in members
                       if member["state"] in ("ok", "suspect"))
        if draining:
            status = "draining"
        elif not members or routable == 0:
            status = "unhealthy"
        elif all(member["state"] == "ok" for member in members):
            status = "ok"
        else:
            status = "degraded"
        payload: Dict[str, Any] = {
            "status": status,
            "role": "router",
            "replicas": members,
            "routable": routable,
            "draining": draining,
        }
        if self._replica_set is not None:
            supervision = self._replica_set.stats()
            payload["restarts"] = supervision["restarts"]
            payload["quarantined"] = supervision["quarantined"]
            if supervision["quarantined"] and status == "ok":
                # A quarantined replica has left membership for good;
                # the set is serving but permanently below strength.
                payload["status"] = "degraded"
        return payload

    def stats(self) -> Dict[str, Any]:
        from ..obs.metrics import parse_prometheus

        snapshot = self.health()
        parsed = parse_prometheus(self.metrics.render())
        snapshot["counters"] = {
            name: sum(series["samples"].values())
            for name, series in parsed.items()
            if series["type"] == "counter"
        }
        return snapshot

    def metrics_text(self) -> str:
        return self.metrics.render()

    def serve_http(self, host: str = "127.0.0.1",
                   port: int = 8000) -> "RouterFrontend":
        """Expose the router over HTTP (daemon thread; ``port=0`` binds
        an ephemeral port — read ``.url``)."""
        if self._http is None:
            self._http = RouterFrontend(self, host=host, port=port).start()
        return self._http

    def __repr__(self) -> str:
        with self._lock:
            states = {member.id: member.state
                      for member in self._members.values()}
        return f"Router(members={states}, draining={self._draining})"


class _RouterHandler(BaseHTTPRequestHandler):
    """Relay handler: router-owned paths answered locally, model paths
    forwarded to a replica and relayed byte-for-byte."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-router"

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    def _router(self) -> Router:
        return self.server.router

    def _relay(self, response: _Response) -> None:
        status, headers, body = response
        self.send_response(status)
        headers = dict(headers)
        headers.setdefault("Content-Type", "application/json")
        headers["Content-Length"] = str(len(body))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self._relay((status, {"Content-Type": "application/json"}, body))

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        router = self._router()
        if self.path == "/healthz":
            health = router.health()
            status = 200 if health["status"] in ("ok", "degraded") else 503
            self._send_json(status, health)
        elif self.path == "/metrics":
            body = router.metrics_text().encode()
            self.send_response(200)
            self.send_header("Content-Type", router.metrics.content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/v1/model":
            self._relay(router.forward(self.path, method="GET"))
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        router = self._router()
        length = int(self.headers.get("Content-Length", 0))
        if self.path == "/admin/drain":
            if 0 < length <= 64 * 1024 * 1024:
                self.rfile.read(length)
            router.begin_drain()
            self._send_json(200, {"status": "draining"})
            return
        if length < 0 or length > 64 * 1024 * 1024:
            self.close_connection = True
            self._send_json(400, {"error": "request body too large"})
            return
        body = self.rfile.read(length) if length else b""
        headers = {name: self.headers[name] for name in _FORWARD_HEADERS
                   if self.headers.get(name)}
        self._relay(router.forward(self.path, body, headers))


class RouterFrontend:
    """The router's own HTTP face (mirrors
    :class:`~repro.serve.http.HTTPFrontend`)."""

    def __init__(self, router: Router, host: str = "127.0.0.1",
                 port: int = 8000) -> None:
        self.httpd = ThreadingHTTPServer((host, port), _RouterHandler)
        self.httpd.daemon_threads = True
        self.httpd.router = router
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "RouterFrontend":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever, name="repro-router-http",
                daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self.httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self.httpd.server_close()

    def __repr__(self) -> str:
        return f"RouterFrontend(url={self.url!r})"
