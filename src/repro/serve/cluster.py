"""Process-backed replica supervision for the serving tier.

A :class:`ReplicaSet` runs N full :class:`~repro.serve.Server` replicas,
each in its own **spawned child process** with its own shard pool,
metrics registry and HTTP port — the unit of failure is the whole
serving process, exactly what PR 6's shard supervision could not cover.
The parent supervises like :class:`~repro.serve.workers.ShardedPool`
supervises shards: a monitor thread notices death (``Process.is_alive``
going false — SIGKILL, ``os._exit``, OOM), respawns the replica under
the same stable ``replica_id`` on a fresh ephemeral port, and
quarantines it after ``max_restarts`` respawns.  Membership decisions
(who receives traffic) belong to :class:`~repro.serve.router.Router`,
which re-reads :meth:`endpoints` before every probe round.

Replica lifecycle::

    [starting] --ready--> [ok] --process death--> [respawning]
                            ^                        |    | restarts
                            +------ready-------------+    | > max
                                                          v
        [stopped] <--stop()-- (any)              [quarantined]

Chaos: ``kill:replica=<i>,after=<k>`` specs in the replica's
:class:`~repro.serve.faults.FaultPlan` make replica ``i`` call
``os._exit(17)`` on its ``k``-th *submitted request* (counted before
admission).  On respawn the parent hands the child a plan with that
kill consumed (:meth:`FaultPlan.without_kill` with ``scope="replica"``)
— one configured kill, exactly one death, mirroring shard semantics.

Children are **spawned**, not forked: the parent runs probe/monitor
threads and a live HTTP stack, none of which may leak into a child.
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from .faults import FaultPlan, ShardFaultState, kill_process
from .server import ServeConfig, Server

__all__ = ["ReplicaSet", "REPLICA_STATES"]

#: Supervision states of one replica process.
REPLICA_STATES = ("starting", "ok", "respawning", "quarantined", "stopped")


def _replica_main(conn, artifact: str, config: ServeConfig,
                  index: int) -> None:
    """Child-process entry point: build the Server, bind an ephemeral
    port, report it through the pipe, then park until told to stop.

    Runs in a spawned interpreter — everything it needs arrives
    pickled through the ``Process`` args.
    """
    server = Server(artifact=artifact, config=config)
    server.warmup()
    plan = config.resolved_faults()
    specs = plan.for_replica(index) if plan is not None else ()
    if specs:
        # Replica-scoped chaos: count submitted requests (pre-admission)
        # and fire delay/error/kill per the plan.  The counter is shared
        # by the HTTP handler threads, hence the lock.
        state = ShardFaultState(specs)
        state_lock = threading.Lock()
        inner_submit = server.submit

        def chaotic_submit(kind, sample, deadline_ms=None):
            with state_lock:
                state.fire(kill_process)
            return inner_submit(kind, sample, deadline_ms=deadline_ms)

        server.submit = chaotic_submit
    frontend = server.serve_http(host=config.host, port=0)
    conn.send(("ready", frontend.address[1]))
    try:
        while True:
            message = conn.recv()
            if message == "drain":
                server.begin_drain()
                conn.send(("draining", None))
            elif message == "stop":
                break
    except (EOFError, OSError):
        pass  # parent went away; die quietly
    try:
        frontend.stop()
        server.stop()
    except Exception:  # noqa: BLE001 — exiting anyway
        pass


class _Replica:
    """Parent-side record of one replica process."""

    def __init__(self, index: int, replica_id: str) -> None:
        self.index = index
        self.id = replica_id
        self.state = "starting"
        self.restarts = 0
        self.proc = None
        self.conn = None
        self.port: Optional[int] = None
        self.plan: Optional[FaultPlan] = None

    @property
    def url(self) -> Optional[str]:
        if self.port is None:
            return None
        return f"http://127.0.0.1:{self.port}"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "index": self.index,
            "state": self.state,
            "restarts": self.restarts,
            "port": self.port,
            "pid": self.proc.pid if self.proc is not None else None,
        }


class ReplicaSet:
    """Supervise N process-backed Server replicas.

    ``config`` is the per-replica :class:`ServeConfig` (each child gets
    it with ``replica_id`` set and ``port=0``); the configured fault
    plan travels to children as a spec string, with fired replica-kills
    consumed on respawn.  Use as a context manager, or
    :meth:`start` / :meth:`stop` explicitly.
    """

    def __init__(self, artifact, replicas: int = 2,
                 config: Optional[ServeConfig] = None,
                 max_restarts: int = 2,
                 start_timeout: float = 120.0) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.artifact = str(artifact)
        self.config = config or ServeConfig()
        self.max_restarts = int(max_restarts)
        self.start_timeout = float(start_timeout)
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._replicas = [
            _Replica(index, f"r{index}") for index in range(replicas)
        ]
        plan = self.config.resolved_faults()
        for replica in self._replicas:
            replica.plan = plan
        self._started = False
        self._draining = False
        self._stop_event = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._settled = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ReplicaSet":
        """Spawn every replica and wait for all ports (idempotent)."""
        with self._lock:
            if self._started:
                return self
            self._started = True
        launchers = [
            threading.Thread(target=self._launch, args=(replica,),
                             name=f"repro-replica-launch-{replica.id}")
            for replica in self._replicas
        ]
        for thread in launchers:
            thread.start()
        for thread in launchers:
            thread.join(timeout=self.start_timeout)
        failed = [replica.id for replica in self._replicas
                  if replica.state != "ok"]
        if failed:
            self.stop()
            raise RuntimeError(
                f"replica(s) {failed} failed to start within "
                f"{self.start_timeout}s"
            )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-replicaset-monitor",
            daemon=True)
        self._monitor.start()
        # Children are non-daemonic (they may run process-backend shard
        # pools, which daemonic processes cannot); this hook runs before
        # multiprocessing's exit-time join, so a forgotten stop() can't
        # hang the interpreter on parked children.
        atexit.register(self.stop)
        return self

    def _child_config(self, replica: _Replica) -> ServeConfig:
        faults = str(replica.plan) if replica.plan else None
        return replace(self.config, replica_id=replica.id, port=0,
                       host="127.0.0.1", faults=faults)

    def _launch(self, replica: _Replica) -> None:
        """Spawn one replica and wait for its ready handshake.  Runs on
        a launcher thread (start) or a respawn thread (monitor)."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_replica_main,
            args=(child_conn, self.artifact,
                  self._child_config(replica), replica.index),
            name=f"repro-replica-{replica.id}",
        )
        proc.start()
        child_conn.close()
        ready = parent_conn.poll(self.start_timeout)
        retry = False
        with self._lock:
            if replica.conn is not None:
                replica.conn.close()
            replica.proc = proc
            replica.conn = parent_conn
            if ready:
                try:
                    message, port = parent_conn.recv()
                except (EOFError, OSError):
                    message, port = None, None
                if message == "ready":
                    replica.port = port
                    replica.state = "ok"
                    self._settled.notify_all()
                    return
            # Startup failure (died during warmup, or hung): another
            # strike against the restart budget.
            replica.port = None
            replica.restarts += 1
            if replica.restarts > self.max_restarts or \
                    self._stop_event.is_set():
                replica.state = "quarantined"
            else:
                replica.state = "respawning"
                retry = True
            self._settled.notify_all()
        if proc.is_alive():
            proc.kill()
        if retry:
            self._launch(replica)

    def _monitor_loop(self) -> None:
        """Notice dead replicas and respawn (or quarantine) them."""
        while not self._stop_event.wait(0.05):
            with self._lock:
                if self._draining:
                    continue  # shutting down: let the dead stay dead
                dead = [
                    replica for replica in self._replicas
                    if replica.state == "ok" and replica.proc is not None
                    and not replica.proc.is_alive()
                ]
                for replica in dead:
                    replica.restarts += 1
                    if replica.restarts > self.max_restarts:
                        replica.state = "quarantined"
                        replica.port = None
                        self._settled.notify_all()
                    else:
                        replica.state = "respawning"
                        replica.port = None
                        # The fired kill (if the plan caused this death)
                        # is consumed so the successor survives.
                        if replica.plan is not None:
                            replica.plan = replica.plan.without_kill(
                                replica.index, scope="replica")
            for replica in dead:
                if replica.state == "respawning":
                    threading.Thread(
                        target=self._launch, args=(replica,),
                        name=f"repro-replica-respawn-{replica.id}",
                    ).start()

    def stop(self) -> None:
        """Stop the monitor, ask children to exit, reap stragglers."""
        atexit.unregister(self.stop)
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=10)
            self._monitor = None
        with self._lock:
            replicas = list(self._replicas)
        for replica in replicas:
            if replica.conn is not None:
                try:
                    replica.conn.send("stop")
                except (BrokenPipeError, OSError):
                    pass
        for replica in replicas:
            if replica.proc is not None:
                replica.proc.join(timeout=10)
                if replica.proc.is_alive():
                    replica.proc.kill()
                    replica.proc.join(timeout=5)
            if replica.conn is not None:
                replica.conn.close()
                replica.conn = None
            replica.state = "stopped"
            replica.port = None

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def begin_drain(self) -> None:
        """Propagate a graceful drain to every live replica (they 503
        new work, finish in-flight work); respawns stop."""
        with self._lock:
            self._draining = True
            live = [replica for replica in self._replicas
                    if replica.state == "ok" and replica.conn is not None]
        for replica in live:
            try:
                replica.conn.send("drain")
            except (BrokenPipeError, OSError):
                pass

    def kill(self, index: int) -> int:
        """SIGKILL replica ``index`` (chaos harness; the monitor will
        respawn it).  Returns the killed pid."""
        with self._lock:
            replica = self._replicas[index]
            if replica.proc is None or not replica.proc.is_alive():
                raise RuntimeError(f"replica {replica.id} is not running")
            pid = replica.proc.pid
        replica.proc.kill()
        return pid

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def endpoints(self) -> List[Tuple[str, str]]:
        """Live ``(replica_id, url)`` pairs — what the router routes
        to.  Respawning/quarantined replicas are absent."""
        with self._lock:
            return [(replica.id, replica.url)
                    for replica in self._replicas
                    if replica.state == "ok" and replica.port is not None]

    def pids(self) -> List[Optional[int]]:
        with self._lock:
            return [replica.proc.pid if replica.proc is not None else None
                    for replica in self._replicas]

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            replicas = [replica.as_dict() for replica in self._replicas]
        return {
            "replicas": replicas,
            "restarts": sum(replica["restarts"] for replica in replicas),
            "quarantined": sum(1 for replica in replicas
                               if replica["state"] == "quarantined"),
            "draining": self._draining,
        }

    def health(self) -> Dict[str, Any]:
        """Supervisor-level health: ``ok`` (all replicas serving),
        ``degraded`` (some), ``unhealthy`` (none)."""
        stats = self.stats()
        serving = sum(1 for replica in stats["replicas"]
                      if replica["state"] == "ok")
        if self._draining:
            status = "draining"
        elif serving == len(stats["replicas"]):
            status = "ok"
        elif serving > 0:
            status = "degraded"
        else:
            status = "unhealthy"
        return {"status": status, "serving": serving, **stats}

    def settle(self, timeout: float = 60.0) -> bool:
        """Wait until no replica is starting/respawning — chaos tests
        call this after a kill; ``True`` when the set settled."""
        deadline = time.monotonic() + timeout
        with self._settled:
            while any(replica.state in ("starting", "respawning")
                      for replica in self._replicas):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._settled.wait(min(remaining, 0.25))
            return True

    def __repr__(self) -> str:
        with self._lock:
            states = {replica.id: replica.state
                      for replica in self._replicas}
        return f"ReplicaSet(artifact={self.artifact!r}, states={states})"
