"""Production-style DONN serving: artifacts, batching, sharding, HTTP.

The serving story on top of :mod:`repro.runtime`:

* :class:`ModelStore` — named, versioned, *self-contained* model
  artifacts on disk (full geometry + detector spec + bit-exact weights);
  ``store.engine(name)`` goes from disk to a compiled
  :class:`~repro.runtime.InferenceEngine` in one call.
* :class:`MicroBatcher` — an asyncio request queue that coalesces
  concurrent single-sample requests into engine-sized batches
  (``max_batch`` / ``max_delay`` flush policy); coalesced predictions
  are byte-identical to per-request ones.
* :class:`ShardedPool` — N workers (threads or processes), each holding
  one engine, least-loaded dispatch, shard-count-invariant results.
* :class:`Server` — the programmatic API tying the three together, plus
  :class:`HTTPFrontend`, a stdlib HTTP/JSON entry point
  (``repro serve`` on the command line).
* :mod:`repro.serve.bench` — the load generator behind
  ``repro bench-serve`` and ``benchmarks/BENCH_serving.json``.

See ``docs/serving.md`` for the architecture and the artifact format.
"""

from .batching import BatcherStats, MicroBatcher
from .bench import benchmark_serving, http_sender, run_load, write_snapshot
from .http import HTTPFrontend
from .server import ResultCache, ServeConfig, Server
from .store import ModelStore, resolve_artifact
from .workers import REQUEST_KINDS, ShardedPool

__all__ = [
    "ModelStore",
    "resolve_artifact",
    "MicroBatcher",
    "BatcherStats",
    "ShardedPool",
    "REQUEST_KINDS",
    "Server",
    "ServeConfig",
    "ResultCache",
    "HTTPFrontend",
    "benchmark_serving",
    "http_sender",
    "run_load",
    "write_snapshot",
]
