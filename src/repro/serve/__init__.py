"""Production-style DONN serving: artifacts, batching, sharding, HTTP.

The serving story on top of :mod:`repro.runtime`:

* :class:`ModelStore` — named, versioned, *self-contained* model
  artifacts on disk (full geometry + detector spec + bit-exact weights);
  ``store.engine(name)`` goes from disk to a compiled
  :class:`~repro.runtime.InferenceEngine` in one call.
* :class:`MicroBatcher` — an asyncio request queue that coalesces
  concurrent single-sample requests into engine-sized batches
  (``max_batch`` / ``max_delay`` flush policy); coalesced predictions
  are byte-identical to per-request ones.
* :class:`ShardedPool` — N workers (threads or processes), each holding
  one engine, least-loaded dispatch, shard-count-invariant results.
* :class:`Server` — the programmatic API tying the three together, plus
  :class:`HTTPFrontend`, a stdlib HTTP/JSON entry point
  (``repro serve`` on the command line).
* :class:`ReplicaSet` + :class:`Router` — the replication tier: N
  process-backed Server replicas supervised like shards (respawn,
  bounded restarts, quarantine) behind a health-probing router with
  least-loaded routing, bounded byte-identical failover, per-replica
  circuit breakers and optional request hedging
  (``repro serve --replicas N``).
* :mod:`repro.serve.bench` — the load generator behind
  ``repro bench-serve`` and ``benchmarks/BENCH_serving.json``.

Fault tolerance rides through the whole stack: the pool supervises its
shards (respawn + bounded retry + quarantine, see
:mod:`repro.serve.workers`), requests carry deadlines
(:class:`~repro.serve.errors.DeadlineExceeded` → 504), the server sheds
load beyond ``max_inflight`` (:class:`~repro.serve.errors.Overloaded` →
429) and drains gracefully (503), and :class:`~repro.serve.faults.FaultPlan`
injects deterministic chaos (kill/delay/error) for tests and the
``BENCH_serving.json`` fault-recovery grid.

See ``docs/serving.md`` for the architecture and the artifact format.
"""

from .batching import BatcherStats, MicroBatcher
from .bench import (
    benchmark_fault_recovery,
    benchmark_replica_recovery,
    benchmark_serving,
    http_sender,
    run_load,
    write_snapshot,
)
from .cluster import REPLICA_STATES, ReplicaSet
from .errors import (
    DeadlineExceeded,
    Draining,
    FaultInjected,
    NoHealthyReplicas,
    NoHealthyShards,
    Overloaded,
    ServeError,
    ShardCrash,
)
from .faults import FaultPlan, FaultSpec
from .http import HTTPFrontend
from .router import BREAKER_STATES, MEMBER_STATES, Router, RouterConfig
from .server import ResultCache, ServeConfig, Server
from .store import ModelStore, resolve_artifact
from .workers import REQUEST_KINDS, SHARD_STATES, ShardedPool

__all__ = [
    "ModelStore",
    "resolve_artifact",
    "MicroBatcher",
    "BatcherStats",
    "ShardedPool",
    "REQUEST_KINDS",
    "SHARD_STATES",
    "Server",
    "ServeConfig",
    "ResultCache",
    "HTTPFrontend",
    "ReplicaSet",
    "REPLICA_STATES",
    "Router",
    "RouterConfig",
    "MEMBER_STATES",
    "BREAKER_STATES",
    "benchmark_fault_recovery",
    "benchmark_replica_recovery",
    "benchmark_serving",
    "http_sender",
    "run_load",
    "write_snapshot",
    "ServeError",
    "DeadlineExceeded",
    "Overloaded",
    "Draining",
    "NoHealthyShards",
    "NoHealthyReplicas",
    "ShardCrash",
    "FaultInjected",
    "FaultPlan",
    "FaultSpec",
]
