"""Stdlib HTTP/JSON entry point over a running :class:`~repro.serve.Server`.

No framework, no dependency: :class:`HTTPFrontend` is a
``ThreadingHTTPServer`` whose handler threads block on the programmatic
API — which routes through the micro-batcher, so concurrent HTTP clients
are coalesced into engine batches exactly like programmatic callers.

Endpoints
---------
``GET  /healthz``        health model (``ok``/``degraded``/``unhealthy``/
                         ``draining``) + per-shard state + counters;
                         HTTP 200 while traffic is served, 503 otherwise
``GET  /metrics``        Prometheus text exposition of the deployment's
                         metrics registry (see :mod:`repro.obs.metrics`)
``GET  /v1/model``       artifact + deployment description
``POST /v1/predict``     ``{"inputs": <2-D sample or 3-D batch>}`` -> labels
``POST /v1/logits``      same request shape -> per-class logits
``POST /v1/intensity``   same request shape -> detector-plane intensity
``POST /admin/drain``    begin a graceful drain: in-flight work finishes,
                         new requests get 503 + ``Retry-After``

Raw images may be any resolution (they go through the model's amplitude
encoder); pre-encoded complex fields are sent as
``{"inputs": <real part>, "inputs_imag": <imag part>}`` with shape
``(n, n)`` / ``(batch, n, n)``.  A request may carry a deadline —
``"deadline_ms"`` in the JSON body or an ``X-Deadline-Ms`` header (the
header wins) — after which it fails fast with **504** instead of
queueing forever.  Errors come back as ``{"error": "..."}``:

* 400 — malformed request (bad JSON, shapes, types)
* 429 — admission window full (``max_inflight``); honors ``Retry-After``
* 503 — draining, or no healthy shard left; honors ``Retry-After``
* 504 — the request's deadline expired before a result was produced
* 500 — anything else (including injected chaos faults)

``Retry-After`` values are *jittered*: each response draws uniformly
from ``[0.75, 1.25) x`` the error's suggested wait, so N clients that
all hit a 429/503 in the same instant don't come back in lockstep and
re-saturate the admission window (thundering herd).
"""

from __future__ import annotations

import json
import math
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from .errors import (
    DeadlineExceeded,
    Draining,
    FaultInjected,
    NoHealthyShards,
    Overloaded,
)

__all__ = ["HTTPFrontend", "jittered_retry_after", "RETRY_AFTER_JITTER"]

#: ``Retry-After`` jitter band: responses draw uniformly from
#: ``[low, high) x suggested``.  Tests enforce this range.
RETRY_AFTER_JITTER = (0.75, 1.25)

# Seeded for reproducible chaos runs; per-call draws still differ, which
# is the whole point — synchronized clients get *different* waits.
_retry_after_rng = random.Random(0x5EED)
_retry_after_lock = threading.Lock()


def jittered_retry_after(suggested: float) -> str:
    """A ``Retry-After`` header value near ``suggested`` seconds.

    Uniform over ``[0.75, 1.25) x max(suggested, 0.05)`` — close enough
    to the server's intent to be honest, spread enough that a herd of
    synchronized clients desynchronizes after one backoff round.
    Formatted as a short decimal (our clients parse floats; integer
    seconds would quantize sub-second waits back into lockstep).
    """
    base = max(float(suggested), 0.05)
    low, high = RETRY_AFTER_JITTER
    with _retry_after_lock:
        factor = low + (high - low) * _retry_after_rng.random()
    return f"{base * factor:.3f}"

#: POST route -> (request kind, response field name).
_ROUTES = {
    "/v1/predict": ("predict", "predictions"),
    "/v1/logits": ("logits", "logits"),
    "/v1/intensity": ("intensity_map", "intensity"),
}

_MAX_BODY = 64 * 1024 * 1024  # refuse absurd request bodies outright


class _BadRequest(ValueError):
    """A client error that should produce a 400, not a 500."""


def _parse_deadline_ms(payload: dict,
                       header: Optional[str]) -> Optional[float]:
    """The request deadline in milliseconds: ``X-Deadline-Ms`` header
    over a ``deadline_ms`` body field, else None."""
    raw = header if header is not None else payload.get("deadline_ms")
    if raw is None:
        return None
    try:
        deadline_ms = float(raw)
    except (TypeError, ValueError) as exc:
        raise _BadRequest(
            f"deadline_ms is not a number: {raw!r}"
        ) from exc
    if not math.isfinite(deadline_ms) or deadline_ms < 0:
        raise _BadRequest(
            f"deadline_ms must be a finite value >= 0, got {deadline_ms}"
        )
    return deadline_ms


def _parse_inputs(payload: dict) -> np.ndarray:
    if not isinstance(payload, dict) or "inputs" not in payload:
        raise _BadRequest('request body must be {"inputs": ...}')
    try:
        inputs = np.asarray(payload["inputs"], dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise _BadRequest(f"inputs are not a numeric array: {exc}") from exc
    if "inputs_imag" in payload:
        try:
            imag = np.asarray(payload["inputs_imag"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(
                f"inputs_imag is not a numeric array: {exc}"
            ) from exc
        if imag.shape != inputs.shape:
            raise _BadRequest(
                f"inputs_imag shape {imag.shape} does not match inputs "
                f"shape {inputs.shape}"
            )
        inputs = inputs + 1j * imag
    if inputs.ndim not in (2, 3):
        raise _BadRequest(
            f"inputs must be a 2-D sample or a 3-D batch, got shape "
            f"{inputs.shape}"
        )
    return inputs


class _Handler(BaseHTTPRequestHandler):
    """One request; the serving ``Server`` hangs off the HTTP server."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass  # request logging is the operator's job, not stderr's

    def _send_json(self, status: int, payload: dict,
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _app(self):
        return self.server.app

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        if self.path == "/healthz":
            health = self._app().health()
            # ok/degraded still serve traffic (200); draining/unhealthy
            # tell load balancers to route elsewhere (503).
            status = 200 if health.get("status") in ("ok", "degraded") \
                else 503
            self._send_json(status, health)
        elif self.path == "/metrics":
            app = self._app()
            body = app.metrics_text().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", app.metrics.content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif self.path == "/v1/model":
            self._send_json(200, self._app().info())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib naming
        if self.path == "/admin/drain":
            # Graceful drain: the request is a signal, not a payload —
            # any body is drained off the keep-alive socket and ignored.
            length = int(self.headers.get("Content-Length", 0))
            if 0 < length <= _MAX_BODY:
                self.rfile.read(length)
            self._app().begin_drain()
            self._send_json(200, {"status": "draining"})
            return
        route = _ROUTES.get(self.path)
        if route is None:
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        kind, field = route
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0 or length > _MAX_BODY:
                # Refusing without reading the body would leave its
                # bytes on a keep-alive socket to be misparsed as the
                # next request — drop the connection instead.
                self.close_connection = True
                if length <= 0:
                    raise _BadRequest("empty request body")
                raise _BadRequest(
                    f"request body of {length} bytes exceeds the "
                    f"{_MAX_BODY}-byte limit"
                )
            try:
                payload = json.loads(self.rfile.read(length))
            except json.JSONDecodeError as exc:
                raise _BadRequest(f"invalid JSON: {exc}") from exc
            deadline_ms = _parse_deadline_ms(
                payload, self.headers.get("X-Deadline-Ms")
            )
            inputs = _parse_inputs(payload)
            result = getattr(self._app(), kind)(inputs,
                                                deadline_ms=deadline_ms)
        except _BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except DeadlineExceeded as exc:
            self._send_json(504, {"error": str(exc)})
        except Overloaded as exc:
            self._send_json(429, {"error": str(exc)},
                            {"Retry-After":
                             jittered_retry_after(exc.retry_after)})
        except Draining as exc:
            self._send_json(503, {"error": str(exc)},
                            {"Retry-After":
                             jittered_retry_after(exc.retry_after)})
        except NoHealthyShards as exc:
            self._send_json(503, {"error": str(exc)})
        except FaultInjected as exc:
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        except ValueError as exc:
            # Shape/validation errors surfaced by the engine.
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 — must answer the client
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(200, {field: np.asarray(result).tolist()})


class HTTPFrontend:
    """Serve a :class:`~repro.serve.Server` over HTTP on a daemon thread.

    ``port=0`` binds an ephemeral port; read the result from ``.url``.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 8000) -> None:
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.app = app
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "HTTPFrontend":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever, name="repro-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self.httpd.shutdown()
            self._thread.join(timeout=10)
            self._thread = None
        self.httpd.server_close()

    def __repr__(self) -> str:
        return f"HTTPFrontend(url={self.url!r})"
