"""Deterministic fault injection for the serving stack (chaos harness).

A :class:`FaultPlan` describes *what goes wrong, where, and when* in a
:class:`~repro.serve.workers.ShardedPool`, in units the pool can count
exactly: per-shard batch indices.  Three fault kinds cover the failure
modes the supervisor must survive:

``kill``
    The worker dies mid-batch — ``os._exit`` in a process shard (the
    real thing: the executor breaks with ``BrokenProcessPool``), a
    :class:`~repro.serve.errors.ShardCrash` in a thread shard (the
    supervised stand-in).  Fires on every batch whose index reaches
    ``after`` until the supervisor respawns the shard, at which point
    the plan's first ``kill`` spec for that shard is *consumed*
    (:meth:`FaultPlan.without_kill`) — one configured kill causes
    exactly one death, so chaos runs are deterministic.
``delay``
    The batch takes ``delay_ms`` longer (sleep before compute) for
    ``times`` consecutive batches starting at ``after`` — for deadline
    and backpressure tests.
``error``
    The batch raises :class:`~repro.serve.errors.FaultInjected` for
    ``times`` batches starting at ``after`` — an application-level
    failure that must fan out to the batch's waiters *without*
    triggering a respawn.

Plans are written as compact spec strings so they travel through config
files, CLI flags and environment variables unchanged::

    kill:shard=1,after=3
    delay:shard=0,ms=50,after=2,times=4; error:shard=1,after=0
    kill:replica=1,after=5

(semicolon-separated specs; exactly one of ``shard``/``replica`` is
required, ``after`` defaults to 0, ``times`` to 1).  Wire-up points:
``ServeConfig(faults=...)``, ``repro serve/bench-serve --faults``, or
the ``REPRO_FAULTS`` environment variable (config wins over env).

Specs come in two *scopes*.  ``shard=`` specs target one shard inside
every replica's pool and count per-shard **batches**.  ``replica=``
specs target one whole :class:`~repro.serve.cluster.ReplicaSet` member
and count that replica's **submitted samples** (the replica wrapper
fires before admission, one count per 2-D input, so ``after=5`` means
"on the 6th sample this replica receives").  A plan may mix both; each consumer filters for
its own scope (:meth:`FaultPlan.for_shard` inside pools,
:meth:`FaultPlan.for_replica` inside replica processes), so specs for
the other scope are inert where they don't apply.

Batch indices count every batch a worker runs **including warm-up
batches** (``ShardedPool.warmup`` sends one per shard), so a plan used
with ``warmup()`` fires one batch later than the raw request count
suggests.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Tuple

from .errors import FaultInjected

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "ShardFaultState",
    "FAULT_ACTIONS",
    "FAULT_SCOPES",
]

FAULT_ACTIONS = ("kill", "delay", "error")

#: Where a spec applies: one shard of a pool, or one whole replica.
FAULT_SCOPES = ("shard", "replica")

#: Environment variable consulted when no explicit plan is configured.
FAULTS_ENV = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``action`` on target ``shard`` (an index in
    ``scope`` — a pool shard or a cluster replica) at count ``after``."""

    action: str
    shard: int
    after: int = 0
    times: int = 1
    delay_ms: float = 0.0
    scope: str = "shard"

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of "
                f"{FAULT_ACTIONS}"
            )
        if self.scope not in FAULT_SCOPES:
            raise ValueError(
                f"unknown fault scope {self.scope!r}; expected one of "
                f"{FAULT_SCOPES}"
            )
        if self.shard < 0:
            raise ValueError(f"{self.scope} must be >= 0, got {self.shard}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.action == "delay" and self.delay_ms <= 0:
            raise ValueError("delay faults need ms > 0 (delay:ms=<float>)")

    def __str__(self) -> str:
        parts = [f"{self.scope}={self.shard}"]
        if self.action == "delay":
            parts.append(f"ms={self.delay_ms:g}")
        if self.after:
            parts.append(f"after={self.after}")
        if self.times != 1:
            parts.append(f"times={self.times}")
        return f"{self.action}:{','.join(parts)}"


def _parse_one(text: str) -> FaultSpec:
    action, _, body = text.partition(":")
    action = action.strip()
    fields = {}
    if body.strip():
        for item in body.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"bad fault field {item!r} in {text!r}; expected "
                    "key=value"
                )
            fields[key] = value.strip()
    targets = [scope for scope in FAULT_SCOPES if scope in fields]
    if len(targets) != 1:
        raise ValueError(
            f"fault spec {text!r} needs exactly one of shard=<index> / "
            f"replica=<index>, got {targets or 'neither'}"
        )
    scope = targets[0]
    known = {"shard", "replica", "after", "times", "ms"}
    unknown = set(fields) - known
    if unknown:
        raise ValueError(
            f"unknown fault field(s) {sorted(unknown)} in {text!r}; "
            f"expected {sorted(known)}"
        )
    try:
        return FaultSpec(
            action=action,
            shard=int(fields[scope]),
            after=int(fields.get("after", 0)),
            times=int(fields.get("times", 1)),
            delay_ms=float(fields.get("ms", 0.0)),
            scope=scope,
        )
    except ValueError:
        raise
    except TypeError as exc:  # pragma: no cover — defensive
        raise ValueError(f"bad fault spec {text!r}: {exc}") from exc


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of :class:`FaultSpec` — picklable, so process
    shards can carry their slice of the plan across the spawn."""

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: Optional[str]) -> Optional["FaultPlan"]:
        """Parse a semicolon-separated spec string; ``None``/blank in,
        ``None`` out."""
        if text is None or not text.strip():
            return None
        specs = tuple(
            _parse_one(part.strip())
            for part in text.split(";") if part.strip()
        )
        return cls(specs=specs)

    @classmethod
    def from_env(cls, env: str = FAULTS_ENV) -> Optional["FaultPlan"]:
        """The plan configured via the environment, if any."""
        return cls.parse(os.environ.get(env))

    def for_shard(self, index: int) -> Tuple[FaultSpec, ...]:
        return tuple(
            spec for spec in self.specs
            if spec.scope == "shard" and spec.shard == index
        )

    def for_replica(self, index: int) -> Tuple[FaultSpec, ...]:
        return tuple(
            spec for spec in self.specs
            if spec.scope == "replica" and spec.shard == index
        )

    def without_kill(self, index: int, scope: str = "shard") -> "FaultPlan":
        """Drop the first ``kill`` spec for ``index`` in ``scope`` —
        called by the supervisor on respawn so one configured kill dies
        exactly once."""
        specs = list(self.specs)
        for position, spec in enumerate(specs):
            if spec.action == "kill" and spec.shard == index \
                    and spec.scope == scope:
                del specs[position]
                break
        return replace(self, specs=tuple(specs))

    def __str__(self) -> str:
        return "; ".join(str(spec) for spec in self.specs)

    def __bool__(self) -> bool:
        return bool(self.specs)


class ShardFaultState:
    """Worker-side runtime of one shard's slice of a plan.

    Owned by exactly one worker (thread closure or child-process
    global), so the batch counter needs no lock.  ``fire`` runs before
    each batch: sleeps for active delay windows, raises for active
    error windows, then calls ``kill`` once a kill spec's threshold is
    reached.
    """

    def __init__(self, specs: Sequence[FaultSpec]) -> None:
        self.specs = tuple(specs)
        self.batches = 0

    def fire(self, kill: Callable[[], None]) -> None:
        index = self.batches
        self.batches += 1
        for spec in self.specs:
            if spec.action == "delay" and \
                    spec.after <= index < spec.after + spec.times:
                time.sleep(spec.delay_ms / 1e3)
        for spec in self.specs:
            if spec.action == "kill" and index >= spec.after:
                kill()
        for spec in self.specs:
            if spec.action == "error" and \
                    spec.after <= index < spec.after + spec.times:
                raise FaultInjected(
                    f"injected fault on {spec.scope} {spec.shard} "
                    f"(batch {index}, spec '{spec}')"
                )


def kill_process() -> None:
    """The ``kill`` action in a process shard: die like a segfault
    would — no exception, no cleanup, the executor just breaks."""
    os._exit(17)
