"""Interpixel crosstalk: the deployment-gap simulator.

The paper's central physical argument (Sec. I, II-B): sharp thickness
changes between adjacent pixels create a fast-varying incident field that
the pixel-wise numerical model does not capture, so digitally trained DONNs
lose accuracy when deployed ([6] reports >= 30 % degradation).  Roughness
(Eq. 3-4) is the paper's *proxy* for this effect; the paper itself never
re-measures hardware accuracy.

This module closes that loop in simulation so "lower roughness => smaller
deployment gap" becomes a measurable claim: each fabricated layer's
*thickness profile* is degraded by a local coupling kernel (neighboring
material partially averages, as in diffusive inter-pixel crosstalk models of
the FPA literature [14]), optionally with scattering loss at steep steps.
Because coupling acts on physical thickness, masks smoothed by the 2-pi
trick genuinely suffer less distortion, exactly as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from . import constants
from .fabrication import phase_to_thickness, thickness_to_phase

__all__ = ["CrosstalkModel"]


def _convolve3x3_nearest(image: np.ndarray,
                         kernel: np.ndarray) -> np.ndarray:
    """3x3 convolution with replicated (nearest) edges, in pure numpy.

    Nine shifted views of an edge-padded copy, weighted and summed —
    equivalent to a general convolution for the symmetric coupling
    kernel, without pulling a scipy dependency into the package's
    import graph (the FFT backend layer must keep the whole package
    importable with scipy absent).
    """
    rows, cols = image.shape
    padded = np.pad(image, 1, mode="edge")
    out = np.zeros_like(image)
    for di in range(3):
        for dj in range(3):
            weight = kernel[di, dj]
            if weight:
                out += weight * padded[di:di + rows, dj:dj + cols]
    return out


def _coupling_kernel(strength: float) -> np.ndarray:
    """3x3 coupling kernel: center keeps ``1 - strength``; the leaked
    fraction spreads over the 8 neighbors with edge pixels weighted twice
    the diagonals (distance weighting)."""
    edge, corner = 2.0, 1.0
    neighbors = np.array(
        [[corner, edge, corner], [edge, 0.0, edge], [corner, edge, corner]]
    )
    neighbors = neighbors / neighbors.sum() * strength
    kernel = neighbors.copy()
    kernel[1, 1] = 1.0 - strength
    return kernel


@dataclass(frozen=True)
class CrosstalkModel:
    """Roughness-sensitive degradation of fabricated phase masks.

    Parameters
    ----------
    strength:
        Fraction of each pixel's effective thickness contributed by its
        neighborhood (0 disables coupling entirely).
    scatter_coefficient:
        Optional amplitude loss at steep steps: transmission amplitude
        ``exp(-c * |grad t| / lambda)`` models light scattered out of the
        propagating mode at sharp walls.  0 disables.
    wavelength, refractive_index:
        Material model forwarded to the fabrication conversions.
    """

    strength: float = 0.15
    scatter_coefficient: float = 0.0
    wavelength: float = constants.PAPER_WAVELENGTH
    refractive_index: float = constants.PRINT_REFRACTIVE_INDEX

    def __post_init__(self) -> None:
        if not 0.0 <= self.strength < 1.0:
            raise ValueError(
                f"coupling strength must be in [0, 1), got {self.strength}"
            )
        if self.scatter_coefficient < 0:
            raise ValueError("scatter coefficient must be non-negative")

    # ------------------------------------------------------------------
    # Thickness-domain physics
    # ------------------------------------------------------------------
    def couple_thickness(self, thickness: np.ndarray) -> np.ndarray:
        """Apply neighborhood coupling to a thickness profile (meters).

        Edge handling replicates the boundary pixel (material simply ends;
        'nearest' avoids phantom zero-thickness neighbors).
        """
        if self.strength == 0.0:
            return np.array(thickness, copy=True)
        kernel = _coupling_kernel(self.strength)
        return _convolve3x3_nearest(np.asarray(thickness, dtype=float),
                                    kernel)

    def step_magnitude(self, thickness: np.ndarray) -> np.ndarray:
        """Mean absolute thickness step to the 4 adjacent pixels."""
        t = np.asarray(thickness, dtype=float)
        padded = np.pad(t, 1, mode="edge")
        steps = (
            np.abs(padded[:-2, 1:-1] - t)
            + np.abs(padded[2:, 1:-1] - t)
            + np.abs(padded[1:-1, :-2] - t)
            + np.abs(padded[1:-1, 2:] - t)
        ) / 4.0
        return steps

    # ------------------------------------------------------------------
    # Phase-domain interface used by deployment evaluation
    # ------------------------------------------------------------------
    def degrade_phase(self, phase: np.ndarray) -> np.ndarray:
        """Effective phase a deployed mask imparts, given ideal ``phase``.

        ``phase`` is the *unwrapped* trained phase (including any 2-pi
        add-ons); the round trip is phase -> thickness -> coupling ->
        phase.
        """
        thickness = phase_to_thickness(
            phase, self.wavelength, self.refractive_index
        )
        coupled = self.couple_thickness(thickness)
        return thickness_to_phase(coupled, self.wavelength,
                                  self.refractive_index)

    def transmission_amplitude(self, phase: np.ndarray) -> np.ndarray:
        """Per-pixel amplitude transmission (1 everywhere when scattering
        is disabled)."""
        if self.scatter_coefficient == 0.0:
            return np.ones_like(np.asarray(phase, dtype=float))
        thickness = phase_to_thickness(
            phase, self.wavelength, self.refractive_index
        )
        steps = self.step_magnitude(thickness)
        return np.exp(-self.scatter_coefficient * steps / self.wavelength)

    def degrade_modulation(self, phase: np.ndarray) -> np.ndarray:
        """Complex transmission ``a * exp(i phi_eff)`` of the deployed mask."""
        return self.transmission_amplitude(phase) * np.exp(
            1j * self.degrade_phase(phase)
        )

    def degrade_phases(self, phases: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Degrade every layer of a trained stack."""
        return [self.degrade_phase(p) for p in phases]

    def phase_error(self, phase: np.ndarray) -> float:
        """RMS difference between ideal and deployed phase (radians).

        Correlates with the layer's roughness; reported alongside the
        deployment accuracy gap in the benches.
        """
        diff = self.degrade_phase(phase) - np.asarray(phase, dtype=float)
        return float(np.sqrt(np.mean(diff ** 2)))
