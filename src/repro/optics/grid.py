"""Simulation grid: sampling geometry shared by every optical computation.

A :class:`SimulationGrid` couples the pixel count, the physical pixel pitch
and the illumination wavelength.  Spatial-frequency axes follow the numpy FFT
layout (DC first), so transfer functions built from :meth:`frequencies` can
be multiplied directly against un-shifted FFTs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from ..backend import fftfreq
from . import constants

__all__ = ["SimulationGrid"]


@dataclass(frozen=True)
class SimulationGrid:
    """Uniform square sampling grid for scalar diffraction.

    Parameters
    ----------
    n:
        Number of pixels per side (the mask resolution).
    pixel_pitch:
        Physical pixel size in meters.
    wavelength:
        Illumination wavelength in meters.
    """

    n: int
    pixel_pitch: float
    wavelength: float

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError(f"grid needs at least 2 pixels per side, got {self.n}")
        if self.pixel_pitch <= 0:
            raise ValueError(f"pixel pitch must be positive, got {self.pixel_pitch}")
        if self.wavelength <= 0:
            raise ValueError(f"wavelength must be positive, got {self.wavelength}")

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def side_length(self) -> float:
        """Physical side length of the simulated aperture in meters."""
        return self.n * self.pixel_pitch

    @property
    def wavenumber(self) -> float:
        """Free-space wavenumber ``k = 2 pi / lambda``."""
        return constants.TWO_PI / self.wavelength

    @property
    def nyquist_frequency(self) -> float:
        """Highest representable spatial frequency, ``1 / (2 dx)``."""
        return 0.5 / self.pixel_pitch

    def coordinates(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return centered physical coordinate grids ``(x, y)`` in meters."""
        axis = (np.arange(self.n) - (self.n - 1) / 2.0) * self.pixel_pitch
        return np.meshgrid(axis, axis, indexing="xy")

    def frequencies(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return spatial-frequency grids ``(fx, fy)`` in cycles/meter.

        Uses the un-shifted FFT ordering so results align with the
        output bins of an unshifted 2-D FFT.
        """
        freq = fftfreq(self.n, d=self.pixel_pitch)
        return np.meshgrid(freq, freq, indexing="xy")

    def fresnel_number(self, distance: float) -> float:
        """Fresnel number of the full aperture at propagation ``distance``."""
        return constants.fresnel_number(self.side_length, self.wavelength,
                                        distance)

    # ------------------------------------------------------------------
    # Rescaling helpers
    # ------------------------------------------------------------------
    def with_padding(self, pad_factor: int) -> "SimulationGrid":
        """Return the enlarged grid used internally for padded propagation."""
        if pad_factor < 1:
            raise ValueError(f"pad factor must be >= 1, got {pad_factor}")
        return replace(self, n=self.n * pad_factor)

    def scaled_distance(
        self,
        reference_n: int,
        reference_distance: float,
        mode: str = "connectivity",
    ) -> float:
        """Layer spacing for a rescaled system, from a reference geometry.

        Two physically meaningful rules when shrinking the published
        200 x 200 aperture to ``n`` pixels at the same pitch:

        * ``"connectivity"`` (default): keep each pixel's diffraction-cone
          fan-out constant *as a fraction of the aperture*.  The cone covers
          ``lambda z / dx`` meters, i.e. ``lambda z / dx^2`` pixels, so the
          fraction is ``lambda z / (dx^2 n)`` and preserving it scales the
          distance linearly with ``n``.  This is what makes small DONNs
          train like the published one (neurons stay densely connected).
        * ``"fresnel"``: keep the aperture Fresnel number
          ``(n dx / 2)^2 / (lambda z)`` constant — distance scales with
          ``n^2``.  Preserves the whole-aperture diffraction regime instead.
        """
        ratio = self.n / reference_n
        if mode == "connectivity":
            return reference_distance * ratio
        if mode == "fresnel":
            return reference_distance * ratio ** 2
        raise ValueError(
            f"unknown scaling mode {mode!r}; expected 'connectivity' or "
            "'fresnel'"
        )

    @classmethod
    def paper(cls) -> "SimulationGrid":
        """The exact published geometry (200 x 200, 36 um, 532 nm)."""
        return cls(
            n=constants.PAPER_MASK_SIZE,
            pixel_pitch=constants.PAPER_PIXEL_PITCH,
            wavelength=constants.PAPER_WAVELENGTH,
        )
