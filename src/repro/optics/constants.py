"""Physical constants and the paper's published system parameters.

All quantities use SI units (meters).  The DAC'23 system (Sec. IV-A):

* three diffractive layers of 200 x 200 pixels;
* pixel size 36 um (layer side 7.2 mm; the paper's "720 um x 720 um" is a
  typo — 200 x 36 um = 7.2 mm);
* coherent source wavelength 532 nm (green laser);
* distance source -> L1, between layers, and L3 -> detector: 27.94 cm;
* ten 20 x 20-pixel detector regions placed evenly on the detector plane.
"""

from __future__ import annotations

import numpy as np

#: Wavelength of the coherent laser source (532 nm, Sec. IV-A1).
PAPER_WAVELENGTH = 532e-9

#: Pixel pitch of each diffractive layer (36 um, Sec. IV-A1).
PAPER_PIXEL_PITCH = 36e-6

#: Mask resolution (200 x 200 pixels, Sec. IV-A1).
PAPER_MASK_SIZE = 200

#: Layer-to-layer / source / detector spacing (27.94 cm = 11 in, Sec. IV-A1).
PAPER_DISTANCE = 27.94e-2

#: Number of diffractive layers in the published system.
PAPER_NUM_LAYERS = 3

#: Side length of each square detector region (20 x 20 pixels).
PAPER_DETECTOR_SIZE = 20

#: Number of classes / detector regions.
PAPER_NUM_CLASSES = 10

#: Refractive index used by the fabrication model (clear photopolymer resins
#: used for 3D-printed masks are n ~ 1.5 in the visible band).
PRINT_REFRACTIVE_INDEX = 1.5

TWO_PI = 2.0 * np.pi


def fresnel_number(aperture: float, wavelength: float, distance: float) -> float:
    """Fresnel number ``N_F = a^2 / (lambda z)`` of a square aperture.

    ``a`` is the half-side of the aperture.  Used to scale the propagation
    distance when shrinking the published 200 x 200 system down to
    laptop-sized grids while keeping the diffraction regime comparable.
    """
    if aperture <= 0 or wavelength <= 0 or distance <= 0:
        raise ValueError("aperture, wavelength and distance must be positive")
    half_side = aperture / 2.0
    return half_side ** 2 / (wavelength * distance)
