"""Optical physics substrate: grids, diffraction, fabrication, crosstalk.

* :class:`SimulationGrid` — sampling geometry (pixels, pitch, wavelength);
* :class:`Propagator` + transfer functions — differentiable free-space
  diffraction (angular spectrum / Fresnel / Fraunhofer);
* fabrication model — phase <-> 3D-printed thickness, quantization;
* :class:`CrosstalkModel` — the interpixel-crosstalk deployment simulator.
"""

from . import constants
from .crosstalk import CrosstalkModel
from .fabrication import (
    PrintedMask,
    phase_to_thickness,
    quantize_phase,
    thickness_to_phase,
    wrap_phase,
)
from .grid import SimulationGrid
from .propagation import (
    Propagator,
    angular_spectrum_tf,
    fraunhofer_pattern,
    fresnel_tf,
    rayleigh_sommerfeld_ir,
)

__all__ = [
    "constants",
    "SimulationGrid",
    "Propagator",
    "angular_spectrum_tf",
    "fresnel_tf",
    "fraunhofer_pattern",
    "rayleigh_sommerfeld_ir",
    "PrintedMask",
    "phase_to_thickness",
    "thickness_to_phase",
    "wrap_phase",
    "quantize_phase",
    "CrosstalkModel",
]
