"""Free-space scalar diffraction (the paper's non-trainable parameter set).

The DONN forward model (Sec. III-A, Eq. 1) propagates a coherent field
between diffractive layers.  Equation 1's convolution with the free-space
impulse response ``h`` is evaluated spectrally::

    U1 = U0 * H(fx, fy, z)          (pointwise, in the Fourier domain)

Three standard approximations of ``H`` are provided:

* **angular spectrum / Rayleigh-Sommerfeld transfer function** (exact for
  band-limited fields) — the default, as in mainstream DONN codebases;
* **Fresnel transfer function** (paraxial approximation);
* **Fraunhofer** far field (single FFT, reference only).

A direct space-domain Rayleigh-Sommerfeld impulse-response kernel is also
included purely as a cross-validation oracle for the tests.

:class:`Propagator` wraps a precomputed transfer function into a
differentiable callable (pad -> FFT -> multiply -> iFFT -> crop) built on
:mod:`repro.autodiff`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import Tensor, as_tensor
from ..autodiff import fused as _fused
from ..autodiff import ops
from ..autodiff.fft import fft2, ifft2
from ..backend import dispatch as _backend
from .grid import SimulationGrid

__all__ = [
    "angular_spectrum_tf",
    "fresnel_tf",
    "fraunhofer_pattern",
    "rayleigh_sommerfeld_ir",
    "Propagator",
]


def angular_spectrum_tf(
    grid: SimulationGrid,
    distance: float,
    band_limit: bool = True,
) -> np.ndarray:
    """Angular-spectrum transfer function ``H(fx, fy; z)``.

    ``H = exp(i 2 pi z sqrt(1/lambda^2 - fx^2 - fy^2))`` for propagating
    components; evanescent components decay exponentially.  With
    ``band_limit=True`` the Matsushima-Shimobaba band limit suppresses the
    aliased high-frequency fringes that otherwise wrap around the grid for
    long propagation distances.

    Negative ``distance`` back-propagates (the conjugate kernel).
    """
    fx, fy = grid.frequencies()
    inv_lambda_sq = 1.0 / grid.wavelength ** 2
    arg = inv_lambda_sq - fx ** 2 - fy ** 2
    propagating = arg >= 0

    kz = 2.0 * np.pi * np.sqrt(np.where(propagating, arg, 0.0))
    decay = 2.0 * np.pi * np.sqrt(np.where(propagating, 0.0, -arg))
    h = np.where(
        propagating,
        np.exp(1j * kz * distance),
        np.exp(-decay * abs(distance)),
    )

    if band_limit and distance != 0.0:
        delta_f = 1.0 / (grid.n * grid.pixel_pitch)
        f_limit = 1.0 / (
            grid.wavelength * np.sqrt((2.0 * delta_f * abs(distance)) ** 2 + 1.0)
        )
        h = h * ((np.abs(fx) <= f_limit) & (np.abs(fy) <= f_limit))
    return h.astype(np.complex128)


def fresnel_tf(grid: SimulationGrid, distance: float) -> np.ndarray:
    """Fresnel (paraxial) transfer function.

    ``H = exp(i k z) exp(-i pi lambda z (fx^2 + fy^2))`` — the small-angle
    expansion of the angular-spectrum kernel.  Valid when the significant
    spatial frequencies satisfy ``lambda * f << 1``.
    """
    fx, fy = grid.frequencies()
    k = grid.wavenumber
    quadratic = np.pi * grid.wavelength * distance * (fx ** 2 + fy ** 2)
    return (np.exp(1j * k * distance) * np.exp(-1j * quadratic)).astype(
        np.complex128
    )


def fraunhofer_pattern(field: np.ndarray, grid: SimulationGrid,
                       distance: float) -> np.ndarray:
    """Far-field (Fraunhofer) complex amplitude via a single FFT.

    Returns the field sampled at pitch ``lambda z / (N dx)``; used as a
    physical sanity reference, not in the DONN forward path (the published
    system is in the Fresnel regime).
    """
    if distance <= 0:
        raise ValueError("Fraunhofer pattern requires a positive distance")
    k = grid.wavenumber
    scaled = _backend.fftshift(
        _backend.fft2(_backend.ifftshift(field), norm="ortho")
    )
    prefactor = np.exp(1j * k * distance) / (1j * grid.wavelength * distance)
    return prefactor * scaled


def rayleigh_sommerfeld_ir(grid: SimulationGrid, distance: float) -> np.ndarray:
    """Sampled Rayleigh-Sommerfeld (type I) impulse response ``h(x, y; z)``.

    ``h = (z / 2 pi) * exp(i k r) / r^2 * (1/r - i k)`` with
    ``r = sqrt(x^2 + y^2 + z^2)``.  Returned centered on the grid; convolve
    (times ``dx^2``) to propagate.  Tests use it as an independent oracle for
    the transfer-function path.
    """
    if distance <= 0:
        raise ValueError("impulse response defined for positive distance")
    x, y = grid.coordinates()
    r = np.sqrt(x ** 2 + y ** 2 + distance ** 2)
    k = grid.wavenumber
    return (
        distance / (2.0 * np.pi) * np.exp(1j * k * r) / r ** 2 * (1.0 / r - 1j * k)
    ).astype(np.complex128)


class Propagator:
    """Differentiable free-space propagation over a fixed distance.

    Parameters
    ----------
    grid:
        Sampling geometry of the (unpadded) field.
    distance:
        Propagation distance in meters (may be negative to back-propagate).
    method:
        ``"angular_spectrum"`` (default) or ``"fresnel"``.
    pad_factor:
        Integer >= 1.  The field is zero-padded to ``pad_factor * n`` per
        side before the FFT to suppress wrap-around (circular convolution)
        artifacts, then cropped back.  ``2`` is the standard choice.
    band_limit:
        Forwarded to :func:`angular_spectrum_tf`.
    """

    def __init__(
        self,
        grid: SimulationGrid,
        distance: float,
        method: str = "angular_spectrum",
        pad_factor: int = 2,
        band_limit: bool = True,
    ) -> None:
        if pad_factor < 1:
            raise ValueError(f"pad_factor must be >= 1, got {pad_factor}")
        self.grid = grid
        self.distance = float(distance)
        self.method = method
        self.pad_factor = int(pad_factor)
        self.band_limit = bool(band_limit)
        # The padded-grid transfer function is shared process-wide: every
        # Propagator (and InferenceEngine) with the same geometry holds
        # the *same* read-only array, so an L-layer DONN computes exactly
        # one kernel instead of L + 1.
        from ..runtime.kernel_cache import get_kernel

        #: Shared :class:`~repro.runtime.kernel_cache.PropagationKernel`.
        self.kernel = get_kernel(
            grid, self.distance, method=method,
            pad_factor=self.pad_factor, band_limit=self.band_limit,
        )
        #: Constant transfer function on the padded grid (shares storage
        #: with the cache entry).
        self.transfer_function = Tensor(self.kernel.h)
        self._pad_pixels = self.kernel.pad

    def __call__(self, field) -> Tensor:
        """Propagate ``field`` (shape ``(..., n, n)``), differentiably.

        Runs the fused single-node fast path by default (one pruned
        NumPy pass forward, the exact ``conj(H)`` adjoint backward — see
        :mod:`repro.autodiff.fused`); disable it to fall back to the
        composed pad/fft2/mul/ifft2/crop reference graph.
        """
        field = as_tensor(field)
        if field.shape[-1] != self.grid.n or field.shape[-2] != self.grid.n:
            raise ValueError(
                f"field shape {field.shape} does not match grid n={self.grid.n}"
            )
        if _fused.fused_enabled():
            return _fused.propagate(field, self)
        return self._composed(field)

    def _composed(self, field: Tensor) -> Tensor:
        """The per-op reference graph (kept for debugging/equivalence)."""
        pad = self._pad_pixels
        if pad:
            field = ops.pad2d(field, pad)
        spectrum = fft2(field, norm="ortho")
        propagated = ifft2(spectrum * self.transfer_function, norm="ortho")
        if pad:
            n = self.grid.n
            propagated = propagated[..., pad:pad + n, pad:pad + n]
        return propagated

    def propagate_array(self, field: np.ndarray) -> np.ndarray:
        """Convenience numpy-in / numpy-out propagation (no gradients)."""
        from ..autodiff import no_grad

        with no_grad():
            return np.asarray(self(Tensor(np.asarray(field))).data)
