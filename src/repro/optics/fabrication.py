"""Fabrication model: phase modulation as physical material thickness.

A 3D-printed diffractive layer (paper Fig. 1d) realizes a phase delay
``phi = 2 pi (n - 1) t / lambda`` through material of thickness ``t`` and
refractive index ``n``.  The interpixel crosstalk the paper targets is a
property of the *physical thickness profile*: adding 2 pi to a pixel's phase
leaves the ideal optical function unchanged (Sec. III-D2) but adds one full
wavelength-equivalent step of material, which changes the topography and
therefore the roughness/crosstalk behaviour.  This module converts between
the two representations and models device-level quantization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import constants

__all__ = [
    "phase_to_thickness",
    "thickness_to_phase",
    "wrap_phase",
    "quantize_phase",
    "PrintedMask",
]


def phase_to_thickness(
    phase: np.ndarray,
    wavelength: float = constants.PAPER_WAVELENGTH,
    refractive_index: float = constants.PRINT_REFRACTIVE_INDEX,
) -> np.ndarray:
    """Material thickness (meters) realizing ``phase`` (radians).

    ``t = phi * lambda / (2 pi (n - 1))``.  Phases are *not* wrapped: a
    pixel carrying ``phi + 2 pi`` is printed one full step thicker, which is
    the degree of freedom the 2-pi optimizer exploits.
    """
    if refractive_index <= 1.0:
        raise ValueError("refractive index must exceed 1 for a phase mask")
    return np.asarray(phase) * wavelength / (
        constants.TWO_PI * (refractive_index - 1.0)
    )


def thickness_to_phase(
    thickness: np.ndarray,
    wavelength: float = constants.PAPER_WAVELENGTH,
    refractive_index: float = constants.PRINT_REFRACTIVE_INDEX,
) -> np.ndarray:
    """Inverse of :func:`phase_to_thickness` (radians, unwrapped)."""
    if refractive_index <= 1.0:
        raise ValueError("refractive index must exceed 1 for a phase mask")
    return (
        np.asarray(thickness) * constants.TWO_PI * (refractive_index - 1.0)
        / wavelength
    )


def wrap_phase(phase: np.ndarray) -> np.ndarray:
    """Wrap phases into the canonical interval ``[0, 2 pi)``."""
    return np.mod(np.asarray(phase), constants.TWO_PI)


def quantize_phase(phase: np.ndarray, levels: int) -> np.ndarray:
    """Quantize wrapped phase onto ``levels`` evenly spaced control values.

    Models the discrete control levels of real devices (SLM gray levels or
    printer layer heights) the paper lists among deployment-gap sources.
    Values are wrapped first, then rounded to the nearest multiple of
    ``2 pi / levels`` (level ``levels`` wraps back to 0).
    """
    if levels < 2:
        raise ValueError(f"need at least 2 quantization levels, got {levels}")
    step = constants.TWO_PI / levels
    quantized = np.round(wrap_phase(phase) / step) * step
    return np.mod(quantized, constants.TWO_PI)


@dataclass(frozen=True)
class PrintedMask:
    """A fabricated diffractive layer: thickness profile plus material data.

    Bundles the physical description needed by the crosstalk simulator and
    provides the round trip back to the phase domain.
    """

    thickness: np.ndarray
    wavelength: float = constants.PAPER_WAVELENGTH
    refractive_index: float = constants.PRINT_REFRACTIVE_INDEX

    @classmethod
    def from_phase(
        cls,
        phase: np.ndarray,
        wavelength: float = constants.PAPER_WAVELENGTH,
        refractive_index: float = constants.PRINT_REFRACTIVE_INDEX,
    ) -> "PrintedMask":
        """Fabricate a mask realizing ``phase`` (unwrapped, radians)."""
        return cls(
            thickness=phase_to_thickness(phase, wavelength, refractive_index),
            wavelength=wavelength,
            refractive_index=refractive_index,
        )

    def phase(self) -> np.ndarray:
        """The unwrapped phase profile this mask imparts."""
        return thickness_to_phase(
            self.thickness, self.wavelength, self.refractive_index
        )

    @property
    def max_step(self) -> float:
        """Largest thickness step between horizontally/vertically adjacent
        pixels (meters) — a quick printability indicator."""
        t = self.thickness
        steps_x = np.abs(np.diff(t, axis=-1)).max(initial=0.0)
        steps_y = np.abs(np.diff(t, axis=-2)).max(initial=0.0)
        return float(max(steps_x, steps_y))
