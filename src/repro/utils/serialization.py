"""Checkpointing: save and restore trained DONN masks as ``.npz`` files."""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = ["save_phases", "load_phases"]


def save_phases(
    path: Union[str, Path],
    phases: Sequence[np.ndarray],
    masks: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> None:
    """Save per-layer phases (and optional sparsity masks) to ``path``.

    Stored keys: ``phase_0 .. phase_{L-1}`` and, where present,
    ``mask_0 .. mask_{L-1}``.
    """
    payload = {f"phase_{i}": np.asarray(p) for i, p in enumerate(phases)}
    if masks is not None:
        if len(masks) != len(list(phases)):
            raise ValueError(
                f"{len(masks)} masks for {len(list(phases))} phase layers"
            )
        for i, mask in enumerate(masks):
            if mask is not None:
                payload[f"mask_{i}"] = np.asarray(mask)
    np.savez(Path(path), **payload)


def load_phases(path: Union[str, Path]):
    """Load ``(phases, masks)`` saved by :func:`save_phases`.

    ``masks`` entries are ``None`` for layers stored without one.
    """
    with np.load(Path(path)) as data:
        indices = sorted(
            int(key.split("_")[1]) for key in data.files
            if key.startswith("phase_")
        )
        if indices != list(range(len(indices))):
            raise ValueError(f"corrupt checkpoint: phase keys {indices}")
        phases: List[np.ndarray] = [data[f"phase_{i}"] for i in indices]
        masks = [
            data[f"mask_{i}"] if f"mask_{i}" in data.files else None
            for i in indices
        ]
    return phases, masks
