"""Checkpointing: save and restore trained DONN artifacts as ``.npz`` files.

Two formats live here:

* :func:`save_phases` / :func:`load_phases` — the original *bare* phase
  checkpoint (per-layer phases + optional sparsity masks, nothing else);
  restoring one requires rebuilding the model geometry by hand.
* :func:`save_model` / :func:`load_model` — the versioned *self-contained*
  model artifact used by :mod:`repro.serve`: the full
  :class:`~repro.donn.model.DONNConfig` (geometry, wavelength, pitch,
  distances, detector layout, parametrization), the raw per-layer weights
  (bit-exact — not the wrapped phase view, so a load reproduces the
  original forward to 0 ULP), sparsity masks and free-form metadata, all
  in one ``.npz``.  ``load_model`` rebuilds a ready-to-run
  :class:`~repro.donn.model.DONN` with no other inputs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "save_phases",
    "load_phases",
    "save_model",
    "load_model",
    "read_model_header",
    "dataclass_to_dict",
    "dataclass_from_dict",
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
]

#: Identifies a self-contained model artifact (vs a bare phase checkpoint).
MODEL_FORMAT = "repro-donn-model"
#: Bump when the artifact layout changes incompatibly; ``load_model``
#: rejects versions it does not understand instead of misreading them.
MODEL_FORMAT_VERSION = 1


def save_phases(
    path: Union[str, Path],
    phases: Sequence[np.ndarray],
    masks: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> None:
    """Save per-layer phases (and optional sparsity masks) to ``path``.

    Stored keys: ``phase_0 .. phase_{L-1}`` and, where present,
    ``mask_0 .. mask_{L-1}``.
    """
    payload = {f"phase_{i}": np.asarray(p) for i, p in enumerate(phases)}
    if masks is not None:
        if len(masks) != len(list(phases)):
            raise ValueError(
                f"{len(masks)} masks for {len(list(phases))} phase layers"
            )
        for i, mask in enumerate(masks):
            if mask is not None:
                payload[f"mask_{i}"] = np.asarray(mask)
    np.savez(Path(path), **payload)


def load_phases(path: Union[str, Path]):
    """Load ``(phases, masks)`` saved by :func:`save_phases`.

    ``masks`` entries are ``None`` for layers stored without one.
    """
    with np.load(Path(path)) as data:
        if "header" in data.files:
            raise ValueError(
                f"{path} is a self-contained model artifact; load it "
                "with load_model instead of load_phases"
            )
        indices = sorted(
            int(key.split("_")[1]) for key in data.files
            if key.startswith("phase_")
        )
        if not indices:
            raise ValueError(
                f"{path} holds no phase_* layers; not a phase checkpoint"
            )
        if indices != list(range(len(indices))):
            raise ValueError(f"corrupt checkpoint: phase keys {indices}")
        phases: List[np.ndarray] = [data[f"phase_{i}"] for i in indices]
        masks = [
            data[f"mask_{i}"] if f"mask_{i}" in data.files else None
            for i in indices
        ]
    for index, (phase, mask) in enumerate(zip(phases, masks)):
        if mask is not None and mask.shape != phase.shape:
            raise ValueError(
                f"corrupt checkpoint: mask_{index} has shape {mask.shape} "
                f"but phase_{index} has shape {phase.shape}"
            )
    return phases, masks


# ----------------------------------------------------------------------
# Dataclass <-> dict round trips (the experiment-config format)
# ----------------------------------------------------------------------
def dataclass_to_dict(obj) -> Dict[str, Any]:
    """Shallow ``dataclass -> dict`` with JSON-safe scalar values.

    Unlike :func:`dataclasses.asdict` this does not recurse — nested
    dataclasses stay objects, so callers decide which sub-configs get
    their own nested dicts (see ``ExperimentConfig.to_dict``).
    """
    import dataclasses

    if not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        raise TypeError(f"expected a dataclass instance, got {obj!r}")
    return {f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)}


def dataclass_from_dict(cls, data: Dict[str, Any], context: str = ""):
    """Build ``cls(**data)``, rejecting unknown keys by name.

    ``context`` prefixes error messages (e.g. the nested-config key the
    dict came from) so a bad experiment file points at the exact field.
    Missing keys fall back to the dataclass defaults; the class's own
    ``__post_init__`` validation still applies.
    """
    import dataclasses

    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"expected a dataclass type, got {cls!r}")
    if not isinstance(data, dict):
        where = f" for {context}" if context else ""
        raise ValueError(
            f"expected a mapping{where}, got {type(data).__name__}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - names)
    if unknown:
        where = f"{context}." if context else ""
        raise ValueError(
            f"unknown {cls.__name__} key(s): "
            f"{', '.join(where + key for key in unknown)} "
            f"(known: {', '.join(sorted(names))})"
        )
    return cls(**data)


# ----------------------------------------------------------------------
# Self-contained model artifacts (the serving format)
# ----------------------------------------------------------------------
def save_model(
    path: Union[str, Path],
    model,
    metadata: Optional[Dict[str, Any]] = None,
    precision: Optional[str] = None,
) -> Path:
    """Write ``model`` (a :class:`~repro.donn.model.DONN`) as a versioned,
    self-contained artifact.

    The artifact stores the JSON-encoded header (format tag + version +
    the full ``DONNConfig`` + the derived detector regions + ``metadata``)
    alongside the *raw* per-layer parameter arrays ``weight_0..L-1`` and
    any sparsity masks ``mask_0..L-1``.  Storing raw weights instead of
    the wrapped phase view sidesteps the sigmoid parametrization's
    clip-and-invert round trip, so a loaded model's forward pass is
    bit-identical to the original (test-enforced to 0 ULP).

    ``metadata`` must be JSON-serializable (accuracy numbers, recipe
    names, training provenance — whatever the caller wants to carry).
    ``precision`` records the precision the model was trained at
    (``"double"`` / ``"single"``); :class:`repro.serve.Server` uses it
    as the default engine precision when serving the artifact.  Returns
    the written path.
    """
    from dataclasses import asdict

    path = Path(path)
    if path.suffix != ".npz":
        # np.savez appends the suffix silently; normalize up front so
        # the returned path is the file that actually exists.
        path = path.with_name(path.name + ".npz")
    if precision is not None:
        from ..backend import resolve_precision

        precision = resolve_precision(precision).name
    config = asdict(model.config)
    header = {
        "format": MODEL_FORMAT,
        "version": MODEL_FORMAT_VERSION,
        "config": config,
        "num_layers": len(model.layers),
        "resolved_distance": model.config.resolved_distance(),
        # The full head recipe (mode/classes/region size), not just the
        # derived regions: serving reloads differential-detection runs
        # from the spec instead of re-deriving geometry, and load_model
        # rejects an artifact whose stored spec disagrees with its
        # config.  Absent in pre-spec artifacts (same format version —
        # the addition is backward/forward compatible).
        "detector_spec": model.config.detector_spec().to_dict(),
        "detector_regions": [
            list(region) for region in model.detector.layout.regions
        ],
        "metadata": dict(metadata or {}),
    }
    if precision is not None:
        # Optional field: readers default absent to "double", so format
        # version 1 artifacts stay readable in both directions.
        header["precision"] = precision
    try:
        encoded = json.dumps(header, sort_keys=True)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"metadata is not JSON-serializable: {exc}") from exc
    payload: Dict[str, np.ndarray] = {
        "header": np.frombuffer(encoded.encode("utf-8"), dtype=np.uint8),
    }
    for index, layer in enumerate(model.layers):
        payload[f"weight_{index}"] = np.asarray(layer.phase.data)
        mask = layer.sparsity_mask
        if mask is not None:
            payload[f"mask_{index}"] = np.asarray(mask)
    np.savez(path, **payload)
    return path


def read_model_header(path: Union[str, Path]) -> Dict[str, Any]:
    """Read and validate just the JSON header of a model artifact.

    Cheap relative to :func:`load_model` (no weight arrays are
    materialized); used by :class:`repro.serve.ModelStore` listings.
    """
    path = Path(path)
    with np.load(path) as data:
        if "header" not in data.files:
            raise ValueError(
                f"{path} is not a model artifact (no header; bare phase "
                "checkpoints load with load_phases)"
            )
        raw = bytes(data["header"].tobytes())
    try:
        header = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: corrupt artifact header: {exc}") from exc
    if header.get("format") != MODEL_FORMAT:
        raise ValueError(
            f"{path}: unknown artifact format {header.get('format')!r} "
            f"(expected {MODEL_FORMAT!r})"
        )
    version = header.get("version")
    if version != MODEL_FORMAT_VERSION:
        raise ValueError(
            f"{path}: artifact version {version!r} is not supported "
            f"(this build reads version {MODEL_FORMAT_VERSION})"
        )
    return header


def load_model(path: Union[str, Path]):
    """Rebuild a ready-to-run :class:`~repro.donn.model.DONN` from an
    artifact written by :func:`save_model`.

    Validates the format tag, version, per-layer weight shapes and mask
    shapes before touching the model.  The package-default RNG is left
    untouched (reconstruction seeds its own throwaway generator; every
    weight is overwritten by the stored arrays anyway).
    """
    from ..donn.model import DONN, DONNConfig

    path = Path(path)
    header = read_model_header(path)
    config = DONNConfig(**header["config"])
    num_layers = int(header["num_layers"])
    if num_layers != config.num_layers:
        raise ValueError(
            f"{path}: header says {num_layers} layers but config builds "
            f"{config.num_layers}"
        )
    stored_spec = header.get("detector_spec")
    if stored_spec is not None:
        expected_spec = config.detector_spec().to_dict()
        if dict(stored_spec) != expected_spec:
            raise ValueError(
                f"{path}: artifact detector spec {stored_spec} does not "
                f"match the config-derived spec {expected_spec}; the "
                "header was edited or written by an incompatible build "
                "— refusing to serve a mismatched readout head"
            )
    stored_regions = header.get("detector_regions")
    if stored_regions is not None:
        expected_regions = [list(region)
                            for region in config.detector_layout().regions]
        if [list(region) for region in stored_regions] != expected_regions:
            raise ValueError(
                f"{path}: artifact detector regions do not match the "
                f"geometry its config derives (stored "
                f"{len(stored_regions)} regions, derived "
                f"{len(expected_regions)}); refusing to load a model "
                "whose readout geometry is ambiguous"
            )
    n = config.n
    weights: List[np.ndarray] = []
    masks: List[Optional[np.ndarray]] = []
    with np.load(path) as data:
        for index in range(num_layers):
            key = f"weight_{index}"
            if key not in data.files:
                raise ValueError(f"{path}: missing {key}")
            weight = data[key]
            if weight.shape != (n, n):
                raise ValueError(
                    f"{path}: {key} has shape {weight.shape}, expected "
                    f"({n}, {n})"
                )
            weights.append(np.array(weight, dtype=np.float64))
            mask_key = f"mask_{index}"
            if mask_key in data.files:
                mask = data[mask_key]
                if mask.shape != weight.shape:
                    raise ValueError(
                        f"{path}: {mask_key} has shape {mask.shape} but "
                        f"{key} has shape {weight.shape}"
                    )
                masks.append(np.array(mask))
            else:
                masks.append(None)
    # A throwaway generator: the init draw is overwritten below, and the
    # package default RNG must not advance as a side effect of loading.
    model = DONN(config, rng=np.random.default_rng(0))
    for layer, weight in zip(model.layers, weights):
        layer.phase.data = weight
    model.apply_sparsity_masks(masks)
    return model
