"""Small shared utilities: ASCII mask art, Pareto frontiers, checkpoints."""

from .ascii_art import render_mask, render_side_by_side
from .interrupt import (
    InterruptRequested,
    check_interrupt,
    graceful_sigint,
    interrupt_requested,
)
from .pareto import pareto_frontier
from .serialization import (
    MODEL_FORMAT,
    MODEL_FORMAT_VERSION,
    dataclass_from_dict,
    dataclass_to_dict,
    load_model,
    load_phases,
    read_model_header,
    save_model,
    save_phases,
)

__all__ = [
    "render_mask",
    "render_side_by_side",
    "pareto_frontier",
    "save_phases",
    "load_phases",
    "save_model",
    "load_model",
    "read_model_header",
    "dataclass_to_dict",
    "dataclass_from_dict",
    "MODEL_FORMAT",
    "MODEL_FORMAT_VERSION",
    "InterruptRequested",
    "graceful_sigint",
    "interrupt_requested",
    "check_interrupt",
]
