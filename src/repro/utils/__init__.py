"""Small shared utilities: ASCII mask art, Pareto frontiers, checkpoints."""

from .ascii_art import render_mask, render_side_by_side
from .pareto import pareto_frontier
from .serialization import load_phases, save_phases

__all__ = [
    "render_mask",
    "render_side_by_side",
    "pareto_frontier",
    "save_phases",
    "load_phases",
]
