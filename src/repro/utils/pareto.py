"""Pareto-frontier extraction for the accuracy/roughness trade-off (Fig. 6a)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["pareto_frontier"]


def pareto_frontier(
    points: Sequence[Tuple[float, float]],
    maximize_first: bool = True,
    minimize_second: bool = True,
) -> List[int]:
    """Indices of the Pareto-optimal points, sorted by the first objective.

    The default orientation matches Fig. 6a: maximize accuracy (first
    coordinate) while minimizing roughness (second coordinate).  A point is
    kept when no other point is at least as good in both objectives and
    strictly better in one.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (n, 2) points, got shape {pts.shape}")
    first = pts[:, 0] if maximize_first else -pts[:, 0]
    second = -pts[:, 1] if minimize_second else pts[:, 1]
    keep: List[int] = []
    for i in range(len(pts)):
        dominated = False
        for j in range(len(pts)):
            if i == j:
                continue
            if (
                first[j] >= first[i]
                and second[j] >= second[i]
                and (first[j] > first[i] or second[j] > second[i])
            ):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    keep.sort(key=lambda idx: pts[idx, 0])
    return keep
