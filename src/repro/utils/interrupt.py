"""Two-stage Ctrl-C handling for long-running commands.

``repro run`` and ``repro sweep`` install :func:`graceful_sigint` around
their work: the **first** Ctrl-C only raises a flag — the training loop
finishes the epoch it is on, writes its checkpoint, the sweep driver
persists the manifest, and the command exits at a clean resume point.
A **second** Ctrl-C restores Python's default handler behaviour and
raises :class:`KeyboardInterrupt` immediately (hard exit).

The flag is process-global (signals are), queried with
:func:`interrupt_requested` and turned into control flow with
:func:`check_interrupt`, which raises :class:`InterruptRequested` — a
normal ``Exception`` the orchestration layer catches to shut down
cleanly.  Outside a :func:`graceful_sigint` block nothing changes:
the flag can never be set, so the checks are free no-ops and Ctrl-C
keeps its stock behaviour.

Worker processes of a parallel sweep never install this handler (they
ignore SIGINT entirely); the orchestrator owns interruption and their
on-disk checkpoints are the resume point.
"""

from __future__ import annotations

import contextlib
import signal
import sys
import threading

__all__ = [
    "InterruptRequested",
    "graceful_sigint",
    "interrupt_requested",
    "check_interrupt",
]


class InterruptRequested(Exception):
    """Raised at the next safe point after a (first) Ctrl-C."""


_requested = threading.Event()


def interrupt_requested() -> bool:
    """True once the user pressed Ctrl-C inside a graceful block."""
    return _requested.is_set()


def check_interrupt(note: str = "") -> None:
    """Raise :class:`InterruptRequested` if a graceful stop is pending."""
    if _requested.is_set():
        raise InterruptRequested(note or "interrupted by Ctrl-C")


@contextlib.contextmanager
def graceful_sigint(message: str = "interrupt requested; finishing the "
                                   "current checkpoint (Ctrl-C again to "
                                   "exit immediately)"):
    """Install the two-stage SIGINT handler for the duration of a block.

    Only usable from the main thread (a signal-handler constraint); in
    any other thread this is a transparent no-op.  Nested blocks are
    not supported — the inner block is a no-op too, so the outermost
    command owns the handler.
    """
    if (threading.current_thread() is not threading.main_thread()
            or _requested.is_set() or _active[0]):
        yield
        return

    def _handler(signum, frame):
        if _requested.is_set():
            # Second Ctrl-C: behave like the default handler.
            raise KeyboardInterrupt
        _requested.set()
        print(message, file=sys.stderr, flush=True)

    _active[0] = True
    previous = signal.signal(signal.SIGINT, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGINT, previous)
        _active[0] = False
        _requested.clear()


#: Re-entrancy latch for :func:`graceful_sigint` (module-private).
_active = [False]
