"""ASCII rendering of phase masks (the repo's stand-in for Fig. 5 images).

No plotting stack is available offline, so mask comparisons (baseline vs
sparsified vs smoothed) are rendered as character art: each pixel maps to a
density character by its phase value.  Good enough to *see* the sparsified
black blocks disappear after 2-pi smoothing, which is what Fig. 5 shows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["render_mask", "render_side_by_side"]

_CHARS = " .:-=+*#%@"


def render_mask(
    mask: np.ndarray,
    vmax: Optional[float] = None,
    downsample: int = 1,
) -> str:
    """Render a 2-D array as character art (dark = low, dense = high).

    Parameters
    ----------
    mask:
        The phase mask (radians, any range).
    vmax:
        Normalization ceiling; defaults to the mask maximum (zero-safe).
    downsample:
        Integer block-averaging factor to fit wide masks into a terminal.
    """
    mask = np.asarray(mask, dtype=float)
    if mask.ndim != 2:
        raise ValueError(f"mask must be 2-D, got shape {mask.shape}")
    if downsample > 1:
        h = mask.shape[0] // downsample * downsample
        w = mask.shape[1] // downsample * downsample
        trimmed = mask[:h, :w]
        mask = trimmed.reshape(
            h // downsample, downsample, w // downsample, downsample
        ).mean(axis=(1, 3))
    ceiling = float(vmax) if vmax is not None else float(mask.max())
    if ceiling <= 0:
        ceiling = 1.0
    normalized = np.clip(mask / ceiling, 0.0, 1.0)
    indices = (normalized * (len(_CHARS) - 1)).round().astype(int)
    return "\n".join("".join(_CHARS[i] for i in row) for row in indices)


def render_side_by_side(masks, labels, vmax: Optional[float] = None,
                        downsample: int = 1, gap: str = "   ") -> str:
    """Render several masks in columns with centered labels above."""
    if len(masks) != len(labels):
        raise ValueError(f"{len(masks)} masks vs {len(labels)} labels")
    rendered = [render_mask(m, vmax=vmax, downsample=downsample).split("\n")
                for m in masks]
    heights = {len(r) for r in rendered}
    if len(heights) != 1:
        raise ValueError("masks must render to the same height")
    widths = [len(r[0]) for r in rendered]
    header = gap.join(label.center(width)[:width]
                      for label, width in zip(labels, widths))
    body = "\n".join(gap.join(parts) for parts in zip(*rendered))
    return header + "\n" + body
