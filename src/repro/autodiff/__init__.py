"""Reverse-mode automatic differentiation over numpy (the PyTorch substitute).

Public surface:

* :class:`Tensor`, :func:`as_tensor`, :class:`no_grad` — core container;
* :mod:`repro.autodiff.ops` — primitive differentiable operations;
* :mod:`repro.autodiff.fft` — differentiable 2-D FFTs with exact adjoints;
* :mod:`repro.autodiff.functional` — softmax / losses / statistics;
* :mod:`repro.autodiff.fused` — the fused DiffMod training fast path
  (single-node forward with hand-derived analytic VJPs);
* :class:`Module`, :class:`Parameter` — model containers;
* :class:`Adam`, :class:`SGD` — optimizers;
* :func:`gradcheck` — finite-difference validation.
"""

from . import fft, functional, fused, ops, rng
from .gradcheck import gradcheck, numeric_gradient
from .module import Module, Parameter
from .optim import SGD, Adam, ExponentialLR, Optimizer, StepLR
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad, set_grad_enabled

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "Module",
    "Parameter",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "ExponentialLR",
    "gradcheck",
    "numeric_gradient",
    "ops",
    "fft",
    "functional",
    "fused",
    "rng",
]
