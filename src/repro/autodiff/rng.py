"""Deterministic random-number utilities shared across the package.

A single module-level :class:`numpy.random.Generator` keeps every stochastic
component (dataset synthesis, initialization, Gumbel noise) reproducible via
one :func:`seed_all` call, while still allowing callers to pass their own
generators for isolated streams.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["seed_all", "get_rng", "spawn_rng", "rand", "randn", "gumbel",
           "get_state", "set_state"]

_DEFAULT_SEED = 0
_rng = np.random.default_rng(_DEFAULT_SEED)


def seed_all(seed: int) -> None:
    """Re-seed the package-wide generator (affects all default streams)."""
    global _rng
    _rng = np.random.default_rng(seed)


def get_state() -> dict:
    """Snapshot the package-wide generator's state (JSON-serializable).

    Together with :func:`set_state` this is what lets training
    checkpoints round-trip the global stream exactly: a resumed run
    draws the same numbers an uninterrupted one would have.
    """
    return _rng.bit_generator.state


def set_state(state: dict) -> None:
    """Restore a state captured by :func:`get_state`."""
    _rng.bit_generator.state = state


def get_rng(rng: Optional[np.random.Generator] = None) -> np.random.Generator:
    """Return ``rng`` if given, else the package-wide generator."""
    return _rng if rng is None else rng


def spawn_rng(seed: int) -> np.random.Generator:
    """Create an independent generator (does not disturb the global one)."""
    return np.random.default_rng(seed)


def rand(*shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniform samples in ``[0, 1)``."""
    return get_rng(rng).random(shape)


def randn(*shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Standard normal samples."""
    return get_rng(rng).standard_normal(shape)


def gumbel(shape, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Standard Gumbel(0, 1) samples: ``-log(-log U)`` with clipped U.

    Used by the Gumbel-Softmax relaxation in the 2-pi optimizer (paper
    Sec. III-D2).  Uniform draws are clipped away from {0, 1} to avoid
    infinities.
    """
    u = get_rng(rng).random(shape)
    u = np.clip(u, 1e-12, 1.0 - 1e-12)
    return -np.log(-np.log(u))
