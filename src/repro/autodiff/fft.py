"""Differentiable 2-D Fourier transforms.

The DONN forward model (paper Sec. III-A) evaluates free-space diffraction as
``ifft2(fft2(field) * H)``.  Both transforms are linear, so their backward
passes are exact operator adjoints; which inverse corresponds to the adjoint
depends on the normalization convention:

==============  =========================
forward norm    adjoint
==============  =========================
``"backward"``  ``ifft2`` with ``"forward"``
``"ortho"``     ``ifft2`` with ``"ortho"``
``"forward"``   ``ifft2`` with ``"backward"``
==============  =========================

The identities are verified directly in the test suite via the inner-product
test ``<F x, y> == <x, F^H y>``.
"""

from __future__ import annotations

import numpy as np

from ..backend import dispatch as _backend
from .ops import _build
from .tensor import Tensor, as_tensor

__all__ = ["fft2", "ifft2", "fftshift", "ifftshift"]

_ADJOINT_NORM = {"backward": "forward", "ortho": "ortho", "forward": "backward"}


def _check_norm(norm: str) -> str:
    if norm not in _ADJOINT_NORM:
        raise ValueError(f"unknown FFT norm {norm!r}; expected one of "
                         f"{sorted(_ADJOINT_NORM)}")
    return norm


def fft2(x, norm: str = "ortho") -> Tensor:
    """2-D FFT over the last two axes (differentiable, complex output)."""
    norm = _check_norm(norm)
    x = as_tensor(x)
    out = _backend.fft2(x.data, norm=norm)
    adjoint = _ADJOINT_NORM[norm]

    def vjp(g):
        return _backend.ifft2(np.asarray(g), norm=adjoint)

    return _build(out, [(x, vjp)])


def ifft2(x, norm: str = "ortho") -> Tensor:
    """2-D inverse FFT over the last two axes (differentiable)."""
    norm = _check_norm(norm)
    x = as_tensor(x)
    out = _backend.ifft2(x.data, norm=norm)
    adjoint = _ADJOINT_NORM[norm]

    def vjp(g):
        return _backend.fft2(np.asarray(g), norm=adjoint)

    return _build(out, [(x, vjp)])


def fftshift(x) -> Tensor:
    """Differentiable zero-frequency-centering shift on the last two axes."""
    x = as_tensor(x)
    out = _backend.fftshift(x.data, axes=(-2, -1))

    def vjp(g):
        return _backend.ifftshift(np.asarray(g), axes=(-2, -1))

    return _build(out, [(x, vjp)])


def ifftshift(x) -> Tensor:
    """Differentiable inverse of :func:`fftshift` on the last two axes."""
    x = as_tensor(x)
    out = _backend.ifftshift(x.data, axes=(-2, -1))

    def vjp(g):
        return _backend.fftshift(np.asarray(g), axes=(-2, -1))

    return _build(out, [(x, vjp)])
