"""Finite-difference gradient checking.

Validates the analytic backward pass of any scalar-valued computation by
central finite differences.  Complex tensors are perturbed separately along
their real and imaginary axes, matching the engine's gradient convention
(``grad = dL/dRe + 1j * dL/dIm``).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numeric_gradient", "gradcheck"]


def numeric_gradient(
    fn: Callable[[], Tensor],
    param: Tensor,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of the real scalar ``fn()`` wrt ``param``.

    ``fn`` must recompute the loss from ``param.data`` on every call (the
    usual closure over tensors).  Returns an array shaped like ``param``;
    complex for complex parameters.
    """
    original = np.array(param.data, copy=True)
    grad = np.zeros_like(original, dtype=np.complex128 if param.is_complex
                         else np.float64)

    def probe(offset: np.ndarray) -> float:
        param.data = original + offset
        value = fn()
        result = value.item() if isinstance(value, Tensor) else value
        if isinstance(result, complex):
            if abs(result.imag) > 1e-12 * max(1.0, abs(result.real)):
                raise ValueError("gradcheck requires a real-valued loss")
            result = result.real
        return float(result)

    flat_index = np.ndindex(*original.shape) if original.shape else [()]
    for index in flat_index:
        basis = np.zeros_like(original)
        basis[index] = 1.0
        plus = probe(eps * basis)
        minus = probe(-eps * basis)
        grad[index] = (plus - minus) / (2 * eps)
        if param.is_complex:
            plus_i = probe(1j * eps * basis)
            minus_i = probe(-1j * eps * basis)
            grad[index] += 1j * (plus_i - minus_i) / (2 * eps)
    param.data = original
    return grad


def gradcheck(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> bool:
    """Compare analytic and numeric gradients; raise ``AssertionError`` on
    mismatch, return ``True`` on success (pytest-friendly)."""
    for param in params:
        param.zero_grad()
    loss = fn()
    if not isinstance(loss, Tensor):
        raise TypeError("fn must return a Tensor")
    if loss.size != 1:
        raise ValueError("gradcheck requires a scalar loss")
    loss.backward()
    for position, param in enumerate(params):
        analytic = param.grad
        if analytic is None:
            analytic = np.zeros_like(param.data)
        numeric = numeric_gradient(fn, param, eps=eps)
        if not np.allclose(analytic, numeric, rtol=rtol, atol=atol):
            worst = np.max(np.abs(np.asarray(analytic) - numeric))
            raise AssertionError(
                f"gradient mismatch for parameter #{position} "
                f"(max abs err {worst:.3e})\nanalytic:\n{analytic}\n"
                f"numeric:\n{numeric}"
            )
    return True
