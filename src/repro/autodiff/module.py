"""Minimal module/parameter system (the ``torch.nn.Module`` analogue).

Modules auto-register :class:`Parameter` attributes and child modules, expose
recursive parameter iteration and flat ``state_dict`` round-tripping — enough
to express DONN models, optimizers and checkpointing without PyTorch.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A trainable leaf tensor (``requires_grad=True`` by default)."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None):
        super().__init__(np.array(data, copy=True), requires_grad=requires_grad,
                         name=name)


class Module:
    """Base class with automatic parameter / submodule registration."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for key, param in self._parameters.items():
            yield (f"{prefix}{key}", param)
        for key, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{key}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants (depth first)."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    # ------------------------------------------------------------------
    # Training utilities
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (returned for chaining)."""
        for module in self.modules():
            object.__setattr__(module, "training", bool(mode))
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter names to copied arrays."""
        return {
            name: np.array(param.data, copy=True)
            for name, param in self.named_parameters()
        }

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        Raises ``KeyError`` on missing entries and ``ValueError`` on shape
        mismatch — silent partial loads hide real bugs.
        """
        params = dict(self.named_parameters())
        missing = sorted(set(params) - set(state))
        if missing:
            raise KeyError(f"state dict is missing parameters: {missing}")
        for name, param in params.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: expected {param.shape}, "
                    f"got {value.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError("Module subclasses must implement forward()")
