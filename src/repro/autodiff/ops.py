"""Primitive differentiable operations for the autodiff engine.

Every function takes :class:`~repro.autodiff.tensor.Tensor` (or array-like)
inputs and returns a new ``Tensor`` whose graph edges hold the
vector-Jacobian products (vjps) used by ``Tensor.backward``.

Complex gradient convention
---------------------------
For a real scalar loss ``L`` the gradient stored for a complex tensor ``z``
is ``dL/d(Re z) + 1j * dL/d(Im z)`` (the PyTorch convention).  For an
elementwise op ``y = f(x)`` with Wirtinger derivatives ``A = dy/dx`` and
``B = dy/d(conj x)`` the upstream gradient ``g`` maps to::

    grad_x = conj(A) * g + B * conj(g)

Holomorphic ops have ``B = 0``.  Real parents automatically receive only the
real part of the contribution (see ``tensor._coerce_to_parent``).
"""

from __future__ import annotations

import builtins
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "matmul", "clone",
    "exp", "log", "sqrt", "sin", "cos", "tanh", "sigmoid",
    "absolute", "abs2", "conj", "real", "imag", "make_complex", "angle",
    "sign", "maximum", "minimum", "clip", "where",
    "sum", "mean", "max", "min",
    "reshape", "transpose", "getitem", "pad2d", "stack", "concatenate",
]


def _build(data: np.ndarray, edges) -> Tensor:
    """Create a result tensor, attaching graph ``edges`` when recording.

    ``edges`` is a sequence of ``(parent, vjp)`` pairs; parents that do not
    require gradients are dropped.
    """
    out = Tensor(data)
    if is_grad_enabled():
        kept = tuple(
            (parent, vjp) for parent, vjp in edges if parent.requires_grad
        )
        if kept:
            out._parents = kept
            out.requires_grad = True
    return out


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------
def clone(x) -> Tensor:
    """Differentiable elementwise identity (fresh storage)."""
    x = as_tensor(x)
    return _build(np.array(x.data, copy=True), [(x, lambda g: g)])


def add(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _build(a.data + b.data, [(a, lambda g: g), (b, lambda g: g)])


def sub(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    return _build(a.data - b.data, [(a, lambda g: g), (b, lambda g: -g)])


def mul(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    a_data, b_data = a.data, b.data
    return _build(
        a_data * b_data,
        [(a, lambda g: g * np.conj(b_data)), (b, lambda g: g * np.conj(a_data))],
    )


def div(a, b) -> Tensor:
    a, b = as_tensor(a), as_tensor(b)
    a_data, b_data = a.data, b.data
    out = a_data / b_data

    def vjp_a(g):
        return g * np.conj(1.0 / b_data)

    def vjp_b(g):
        return g * np.conj(-a_data / (b_data * b_data))

    return _build(out, [(a, vjp_a), (b, vjp_b)])


def neg(x) -> Tensor:
    x = as_tensor(x)
    return _build(-x.data, [(x, lambda g: -g)])


def power(x, exponent: Union[int, float]) -> Tensor:
    """Elementwise power with a constant real exponent (holomorphic)."""
    if isinstance(exponent, Tensor):
        raise TypeError("power() only supports constant scalar exponents")
    x = as_tensor(x)
    x_data = x.data
    out = x_data ** exponent

    def vjp(g):
        return g * np.conj(exponent * x_data ** (exponent - 1))

    return _build(out, [(x, vjp)])


def matmul(a, b) -> Tensor:
    """Matrix product with numpy batching rules (operands must be >= 2-D)."""
    a, b = as_tensor(a), as_tensor(b)
    if a.ndim < 2 or b.ndim < 2:
        raise ValueError(
            "matmul requires operands with ndim >= 2; use reshape for vectors"
        )
    a_data, b_data = a.data, b.data
    out = np.matmul(a_data, b_data)

    def vjp_a(g):
        return np.matmul(g, np.conj(np.swapaxes(b_data, -1, -2)))

    def vjp_b(g):
        return np.matmul(np.conj(np.swapaxes(a_data, -1, -2)), g)

    return _build(out, [(a, vjp_a), (b, vjp_b)])


# ----------------------------------------------------------------------
# Transcendental (holomorphic where complex)
# ----------------------------------------------------------------------
def exp(x) -> Tensor:
    x = as_tensor(x)
    out = np.exp(x.data)
    return _build(out, [(x, lambda g: g * np.conj(out))])


def log(x) -> Tensor:
    x = as_tensor(x)
    x_data = x.data
    return _build(np.log(x_data), [(x, lambda g: g * np.conj(1.0 / x_data))])


def sqrt(x) -> Tensor:
    x = as_tensor(x)
    out = np.sqrt(x.data)
    return _build(out, [(x, lambda g: g * np.conj(0.5 / out))])


def sin(x) -> Tensor:
    x = as_tensor(x)
    x_data = x.data
    return _build(np.sin(x_data), [(x, lambda g: g * np.conj(np.cos(x_data)))])


def cos(x) -> Tensor:
    x = as_tensor(x)
    x_data = x.data
    return _build(np.cos(x_data), [(x, lambda g: g * np.conj(-np.sin(x_data)))])


def tanh(x) -> Tensor:
    x = as_tensor(x)
    out = np.tanh(x.data)
    return _build(out, [(x, lambda g: g * np.conj(1.0 - out * out))])


def sigmoid(x) -> Tensor:
    """Logistic function for real tensors."""
    x = as_tensor(x)
    out = 1.0 / (1.0 + np.exp(-x.data))
    return _build(out, [(x, lambda g: g * out * (1.0 - out))])


# ----------------------------------------------------------------------
# Complex structure
# ----------------------------------------------------------------------
def conj(x) -> Tensor:
    x = as_tensor(x)
    return _build(np.conj(x.data), [(x, lambda g: np.conj(g))])


def real(x) -> Tensor:
    """Real part.  Gradient flows only into the real component."""
    x = as_tensor(x)
    return _build(np.real(x.data).copy(), [(x, lambda g: g)])


def imag(x) -> Tensor:
    """Imaginary part.  Gradient flows only into the imaginary component."""
    x = as_tensor(x)
    return _build(np.imag(x.data).copy(), [(x, lambda g: 1j * g)])


def make_complex(re, im) -> Tensor:
    """Assemble ``re + 1j * im`` from two real tensors."""
    re, im = as_tensor(re), as_tensor(im)
    if re.is_complex or im.is_complex:
        raise TypeError("make_complex expects real-valued inputs")
    out = re.data + 1j * im.data
    return _build(out, [(re, lambda g: g), (im, lambda g: -1j * g)])


def abs2(x) -> Tensor:
    """Squared magnitude ``|x|**2`` (real output; the optical intensity)."""
    x = as_tensor(x)
    x_data = x.data
    out = (x_data * np.conj(x_data)).real if x.is_complex else x_data * x_data

    def vjp(g):
        return 2.0 * x_data * g

    return _build(out, [(x, vjp)])


def absolute(x) -> Tensor:
    """Magnitude ``|x|``.  Real subgradient at 0 is taken as 0."""
    x = as_tensor(x)
    x_data = x.data
    out = np.abs(x_data)

    if x.is_complex:

        def vjp(g):
            with np.errstate(invalid="ignore", divide="ignore"):
                phase = np.where(out == 0, 0, x_data / np.where(out == 0, 1, out))
            return phase * g

    else:

        def vjp(g):
            return np.sign(x_data) * g

    return _build(out, [(x, vjp)])


def angle(x) -> Tensor:
    """Phase of a complex tensor, differentiable away from the origin."""
    x = as_tensor(x)
    x_data = x.data
    out = np.angle(x_data)
    mag2 = (x_data * np.conj(x_data)).real

    def vjp(g):
        with np.errstate(invalid="ignore", divide="ignore"):
            scale = np.where(mag2 == 0, 0, 1.0 / np.where(mag2 == 0, 1, mag2))
        return 1j * x_data * scale * np.real(g)

    return _build(out, [(x, vjp)])


def sign(x) -> Tensor:
    """Elementwise sign; treated as a constant (zero gradient)."""
    x = as_tensor(x)
    return Tensor(np.sign(x.data))


# ----------------------------------------------------------------------
# Comparison-style ops (real tensors)
# ----------------------------------------------------------------------
def maximum(a, b) -> Tensor:
    """Elementwise max of two real tensors (ties route gradient to ``a``)."""
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data >= b.data
    out = np.where(mask, a.data, b.data)
    return _build(
        out, [(a, lambda g: g * mask), (b, lambda g: g * (~mask))]
    )


def minimum(a, b) -> Tensor:
    """Elementwise min of two real tensors (ties route gradient to ``a``)."""
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data <= b.data
    out = np.where(mask, a.data, b.data)
    return _build(
        out, [(a, lambda g: g * mask), (b, lambda g: g * (~mask))]
    )


def clip(x, lo: Optional[float], hi: Optional[float]) -> Tensor:
    """Clamp a real tensor to ``[lo, hi]``; gradient is 1 strictly inside."""
    x = as_tensor(x)
    out = np.clip(x.data, lo, hi)
    inside = np.ones_like(x.data, dtype=bool)
    if lo is not None:
        inside &= x.data > lo
    if hi is not None:
        inside &= x.data < hi
    return _build(out, [(x, lambda g: g * inside)])


def where(condition, a, b) -> Tensor:
    """Select ``a`` where ``condition`` else ``b`` (condition is constant)."""
    cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
    cond = cond.astype(bool)
    a, b = as_tensor(a), as_tensor(b)
    out = np.where(cond, a.data, b.data)
    return _build(
        out, [(a, lambda g: g * cond), (b, lambda g: g * (~cond))]
    )


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
def _expand_reduced(g: np.ndarray, shape: Tuple[int, ...], axis, keepdims):
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(g, shape)
    axes = axis if isinstance(axis, tuple) else (axis,)
    axes = tuple(ax % len(shape) for ax in axes)
    if not keepdims:
        expanded = list(g.shape)
        for ax in sorted(axes):
            expanded.insert(ax, 1)
        g = g.reshape(expanded)
    return np.broadcast_to(g, shape)


def sum(x, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    x = as_tensor(x)
    out = np.sum(x.data, axis=axis, keepdims=keepdims)
    shape = x.shape

    def vjp(g):
        return _expand_reduced(np.asarray(g), shape, axis, keepdims)

    return _build(np.asarray(out), [(x, vjp)])


def mean(x, axis=None, keepdims: bool = False) -> Tensor:
    x = as_tensor(x)
    out = np.mean(x.data, axis=axis, keepdims=keepdims)
    shape = x.shape
    count = x.size if axis is None else np.prod(
        [shape[ax % len(shape)] for ax in (axis if isinstance(axis, tuple) else (axis,))]
    )

    def vjp(g):
        return _expand_reduced(np.asarray(g), shape, axis, keepdims) / count

    return _build(np.asarray(out), [(x, vjp)])


def _extremum(x, axis, keepdims, np_fn) -> Tensor:
    x = as_tensor(x)
    if x.is_complex:
        raise TypeError("max/min are undefined for complex tensors")
    out = np_fn(x.data, axis=axis, keepdims=keepdims)
    x_data, shape = x.data, x.shape

    def vjp(g):
        full = _expand_reduced(np.asarray(g), shape, axis, keepdims)
        out_full = _expand_reduced(np.asarray(out), shape, axis, keepdims)
        mask = x_data == out_full
        counts = _expand_reduced(
            np.sum(mask, axis=axis, keepdims=keepdims), shape, axis, keepdims
        )
        return full * mask / counts

    return _build(np.asarray(out), [(x, vjp)])


def max(x, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Maximum over ``axis``; ties share the gradient equally."""
    return _extremum(x, axis, keepdims, np.max)


def min(x, axis=None, keepdims: bool = False) -> Tensor:  # noqa: A001
    """Minimum over ``axis``; ties share the gradient equally."""
    return _extremum(x, axis, keepdims, np.min)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------
def reshape(x, shape: Tuple[int, ...]) -> Tensor:
    x = as_tensor(x)
    original = x.shape
    return _build(
        x.data.reshape(shape), [(x, lambda g: np.asarray(g).reshape(original))]
    )


def transpose(x, axes: Optional[Sequence[int]] = None) -> Tensor:
    x = as_tensor(x)
    if axes is None:
        axes = tuple(reversed(range(x.ndim)))
    axes = tuple(axes)
    inverse = tuple(np.argsort(axes))
    return _build(
        np.transpose(x.data, axes),
        [(x, lambda g: np.transpose(np.asarray(g), inverse))],
    )


def getitem(x, key) -> Tensor:
    """Basic or advanced indexing; the backward pass scatters with add.at."""
    x = as_tensor(x)
    out = x.data[key]
    shape, dtype = x.shape, x.data.dtype

    def vjp(g):
        scattered = np.zeros(shape, dtype=np.result_type(dtype, np.asarray(g).dtype))
        np.add.at(scattered, key, g)
        return scattered

    return _build(np.array(out, copy=True), [(x, vjp)])


def pad2d(x, pad: Union[int, Tuple[int, int]]) -> Tensor:
    """Zero-pad the last two axes by ``pad`` pixels on every side."""
    x = as_tensor(x)
    if isinstance(pad, int):
        pad = (pad, pad)
    py, px = pad
    widths = [(0, 0)] * (x.ndim - 2) + [(py, py), (px, px)]
    out = np.pad(x.data, widths)
    h, w = x.shape[-2], x.shape[-1]

    def vjp(g):
        g = np.asarray(g)
        return g[..., py:py + h, px:px + w]

    return _build(out, [(x, vjp)])


def stack(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_vjp(index: int):
        def vjp(g):
            return np.take(np.asarray(g), index, axis=axis)

        return vjp

    return _build(out, [(t, make_vjp(i)) for i, t in enumerate(tensors)])


def concatenate(tensors: Sequence, axis: int = 0) -> Tensor:
    tensors = [as_tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def make_vjp(index: int):
        lo, hi = offsets[index], offsets[index + 1]

        def vjp(g):
            slicer = [builtins.slice(None)] * np.asarray(g).ndim
            slicer[axis] = builtins.slice(lo, hi)
            return np.asarray(g)[tuple(slicer)]

        return vjp

    return _build(out, [(t, make_vjp(i)) for i, t in enumerate(tensors)])
