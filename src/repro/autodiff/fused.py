"""Fused training fast path: the DiffMod chain as one custom autodiff op.

The composed forward of a :class:`~repro.donn.layers.DiffractiveLayer`
records ~10 graph nodes per layer per batch::

    pad -> fft2 -> H-mul -> ifft2 -> crop -> sigmoid -> scale
        -> make_complex -> exp -> mul

Each node allocates its output and a vjp closure, and the crop's backward
scatters with ``np.add.at`` — none of which is necessary.  The propagation
``P = crop . ifft2 . (H .) . fft2 . pad`` is linear, so its adjoint is the
same two FFTs around a ``conj(H)`` multiply, and the phase vjp is a
closed-form elementwise expression of intermediates the forward already
produced.  :func:`diffmod` therefore computes the whole chain in one NumPy
pass and records a *single* graph node with a hand-derived backward:

* field path — ``out = P(field) * W`` with ``P`` linear and ``W = exp(i
  phi)`` constant in ``field``, so ``grad_field = P^H(g * conj(W))``
  (two FFTs, the propagation adjoint);
* phase path — ``out = P * exp(i phi)`` is holomorphic in ``phi`` with
  ``d out / d phi = i * out``, so under the engine's gradient convention
  ``dL/dphi = Im(conj(out) * g)`` summed over the batch, then chained
  through the (optional) frozen sparsity mask and the sigmoid
  reparametrization ``phi = 2 pi * s(w)`` (factor ``2 pi * s * (1 - s)``).
  Both factors reuse cached forward intermediates — backward adds exactly
  two FFTs and zero graph bookkeeping.

The forward reuses the shared propagation-kernel cache (per-hop ortho
scaling folded into ``H`` once, exactly like the inference engine) and the
runtime scratch buffers, and applies the engine's pruned-FFT border trick:
the padded field is zero outside the ``n`` interior rows, so the row-axis
passes only visit those rows — 25 % less FFT work at ``pad_factor=2`` with
results identical to the composed ops.

The fast path is the default for :class:`~repro.optics.propagation.Propagator`
and :class:`~repro.donn.layers.DiffractiveLayer`.  Opt out for debugging
with :func:`set_fused_enabled`, the :class:`fused_disabled` context
manager, or ``REPRO_FUSED=0`` in the environment; the composed per-op
graph is kept as the reference implementation (equivalence is
test-enforced by ``tests/autodiff/test_fused.py``).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ..backend import dispatch as _fft
from ..backend import get_precision
from .ops import _build
from .tensor import Tensor, as_tensor

__all__ = [
    "diffmod",
    "propagate",
    "fused_enabled",
    "set_fused_enabled",
    "fused_disabled",
    "clear_scratch",
]

_TWO_PI = 2.0 * np.pi
_PARAMETRIZATIONS = ("sigmoid", "direct")

#: Global switch; REPRO_FUSED=0 in the environment starts it disabled.
_ENABLED: bool = os.environ.get("REPRO_FUSED", "1").lower() not in (
    "0", "false", "off",
)


def fused_enabled() -> bool:
    """Whether layers/propagators run the fused single-node fast path."""
    return _ENABLED


def set_fused_enabled(mode: bool) -> None:
    """Globally enable or disable the fused fast path."""
    global _ENABLED
    _ENABLED = bool(mode)


class fused_disabled:
    """Context manager that runs the composed per-op reference graph.

    Usable as a decorator, mirroring :class:`~repro.autodiff.no_grad`.
    """

    def __enter__(self) -> "fused_disabled":
        self._previous = fused_enabled()
        set_fused_enabled(False)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_fused_enabled(self._previous)

    def __call__(self, fn):
        def wrapper(*args, **kwargs):
            with fused_disabled():
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


# ----------------------------------------------------------------------
# Shared prescaled kernels and scratch buffers
# ----------------------------------------------------------------------
_SCRATCH = None


def _scratch():
    """Process-wide scratch pool (lazy import dodges the optics cycle)."""
    global _SCRATCH
    if _SCRATCH is None:
        from ..runtime.buffers import ScratchBuffers

        _SCRATCH = ScratchBuffers()
    return _SCRATCH


def clear_scratch() -> None:
    """Release the calling thread's fused-op scratch buffers.

    The pool retains the largest padded work plane a thread has ever
    used (``batch * padded_n^2`` complex128); long-lived processes that
    finished a large training run can reclaim that memory here.
    """
    if _SCRATCH is not None:
        _SCRATCH.clear()


def _prescaled(kernel) -> Tuple[np.ndarray, np.ndarray]:
    """``(H/side^2, conj(H)/side^2)`` at the active compute precision.

    Both arrays are computed once per cached kernel and shared with
    every other consumer (see ``PropagationKernel.prescaled``); the
    per-hop ortho scalings are folded in so the hot loop runs unscaled
    DFT passes, exactly like the inference engine.  Under a single
    precision policy the shared complex64 kernel variant is fetched
    through the cache (one downcast per geometry, process-wide).
    """
    cdtype = get_precision().complex_dtype
    if kernel.dtype != cdtype:
        from ..runtime.kernel_cache import kernel_for_dtype

        kernel = kernel_for_dtype(kernel, cdtype)
    return kernel.prescaled(), kernel.prescaled_conj()


# ----------------------------------------------------------------------
# The propagation pass (forward and adjoint are the same routine)
# ----------------------------------------------------------------------
def _propagate_padded(fields: np.ndarray, h: np.ndarray, pad: int,
                      n: int) -> np.ndarray:
    """One pad -> FFT -> ``h``-mul -> IFFT -> crop hop over ``(batch, n, n)``.

    ``h`` is a *prescaled* transfer function (or its conjugate, for the
    adjoint); its dtype sets the compute precision — the padded work
    plane is allocated at ``h.dtype``, so a complex64 kernel runs the
    whole hop (and any complex128 inputs assigned into the plane) in
    single precision.  The padded field is zero outside the ``n``
    interior rows, so each 2-D transform runs as two 1-D passes and the
    row-axis pass only visits those rows (the zero border transforms to
    zero for free); the inverse side produces only the interior rows,
    which is all the crop keeps.  Returns a fresh array each call —
    only the padded ``work`` plane is shared scratch.

    This is the single-hop form of the multi-hop loop in
    ``InferenceEngine._propagate_chunk`` (which additionally keeps the
    field resident on the padded grid between hops); a change to the
    pruning trick or the normalization convention must be mirrored there.
    """
    side = h.shape[-1]
    batch = fields.shape[0]
    rows = slice(pad, pad + n)
    work = _scratch().zeros("fused", (batch, side, side), h.dtype)
    work[:, rows, pad:pad + n] = fields
    work[:, rows, :] = _fft.fft(work[:, rows, :], axis=-1)
    spectrum = _fft.fft(work, axis=-2)
    np.multiply(spectrum, h, out=spectrum)
    tall = _fft.ifft(spectrum, axis=-2, norm="forward", overwrite_x=True)
    inner = _fft.ifft(tall[:, rows, :], axis=-1, norm="forward",
                      overwrite_x=True)
    return inner[:, :, pad:pad + n]


def _check_field(field: Tensor, n: int) -> None:
    if field.shape[-1] != n or field.shape[-2] != n:
        raise ValueError(
            f"field shape {field.shape} does not match grid n={n}"
        )


# ----------------------------------------------------------------------
# Fused ops
# ----------------------------------------------------------------------
def propagate(field, propagator) -> Tensor:
    """Free-space propagation as one graph node (the :class:`Propagator`
    fast path).

    Forward: ``crop(ifft2(fft2(pad(field)) * H))`` in a single pruned
    NumPy pass.  Backward: the exact adjoint, ``crop(ifft2(fft2(pad(g)) *
    conj(H)))`` — gradient-identical to the composed pad/fft2/mul/ifft2/
    crop chain.
    """
    field = as_tensor(field)
    kernel = propagator.kernel
    n = kernel.grid.n
    _check_field(field, n)
    h, h_conj = _prescaled(kernel)
    pad = kernel.pad
    shape = field.shape
    fields = field.data.reshape((-1, n, n))
    out = np.ascontiguousarray(
        _propagate_padded(fields, h, pad, n)
    ).reshape(shape)

    def vjp(g):
        g = np.asarray(g).reshape((-1, n, n))
        return _propagate_padded(g, h_conj, pad, n).reshape(shape)

    return _build(out, [(field, vjp)])


def diffmod(
    field,
    raw_phase,
    propagator,
    mask: Optional[np.ndarray] = None,
    parametrization: str = "sigmoid",
) -> Tensor:
    """The whole ``DiffMod(f, W) = L(f, z) * exp(i phi(w))`` chain as one
    autodiff node (the :class:`DiffractiveLayer` training fast path).

    Parameters
    ----------
    field:
        Incoming complex field, shape ``(..., n, n)``.
    raw_phase:
        The layer's trainable raw weights ``w`` of shape ``(n, n)``
        (pre-sigmoid under ``"sigmoid"``, the phase itself under
        ``"direct"``).
    propagator:
        The layer's :class:`~repro.optics.propagation.Propagator`; its
        shared cached kernel supplies ``H`` and the padding.
    mask:
        Optional frozen 0/1 keep-mask applied to the phase *value*
        (pruned pixels impart ``phi = 0`` and receive no gradient).
    parametrization:
        ``"sigmoid"`` (``phi = 2 pi * sigmoid(w)``) or ``"direct"``
        (``phi = w``).

    Forward cost is one pruned propagation pass plus elementwise work;
    backward adds exactly two FFTs (the propagation adjoint for the field
    gradient) and reuses the cached modulation and layer output for the
    phase gradient — see the module docstring for the derivation.
    """
    if parametrization not in _PARAMETRIZATIONS:
        raise ValueError(
            f"unknown parametrization {parametrization!r}; expected one "
            f"of {_PARAMETRIZATIONS}"
        )
    field = as_tensor(field)
    raw_phase = as_tensor(raw_phase)
    kernel = propagator.kernel
    n = kernel.grid.n
    _check_field(field, n)
    if raw_phase.shape != (n, n):
        raise ValueError(
            f"raw phase shape {raw_phase.shape} does not match grid "
            f"({n}, {n})"
        )
    if mask is not None:
        mask = np.asarray(mask, dtype=np.float64)
        if mask.shape != (n, n):
            raise ValueError(
                f"mask shape {mask.shape} does not match grid ({n}, {n})"
            )
    h, h_conj = _prescaled(kernel)
    cdtype = h.dtype
    rdtype = np.dtype("float32" if cdtype == np.complex64 else "float64")
    pad = kernel.pad
    shape = field.shape

    fields = field.data.reshape((-1, n, n))
    propagated = _propagate_padded(fields, h, pad, n)

    # Elementwise phase math runs at the compute precision too: under
    # the single policy the float64 master weights are read through a
    # float32 view of the chain, so modulation / output / gradients are
    # complex64 end to end (the optimizer state follows, see optim.py).
    w = raw_phase.data.astype(rdtype, copy=False)
    if parametrization == "sigmoid":
        s = 1.0 / (1.0 + np.exp(-w))
        phi = s * _TWO_PI
    else:
        s = None
        phi = w
    if mask is not None:
        mask = mask.astype(rdtype, copy=False)
        phi = phi * mask
    modulation = np.exp(1j * phi)
    out_flat = propagated * modulation
    out = out_flat.reshape(shape)

    def vjp_field(g):
        g = np.asarray(g)
        g = g.astype(cdtype, copy=False).reshape((-1, n, n))
        grad = _propagate_padded(g * np.conj(modulation), h_conj, pad, n)
        return grad.reshape(shape)

    def vjp_phase(g):
        g = np.asarray(g)
        g = g.astype(cdtype, copy=False).reshape((-1, n, n))
        grad = np.sum((np.conj(out_flat) * g).imag, axis=0)
        if mask is not None:
            grad = grad * mask
        if s is not None:
            grad = grad * (_TWO_PI * s * (1.0 - s))
        return grad

    return _build(out, [(field, vjp_field), (raw_phase, vjp_phase)])
