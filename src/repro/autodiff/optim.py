"""First-order optimizers and learning-rate schedules.

The paper trains with Adam (lr 0.2 for baselines, 0.001 during SLR
sparsification); SGD is provided for tests and ablations.  Both optimizers
support complex parameters elementwise — the second Adam moment uses
``|g|^2`` so complex phases could be optimized directly if desired.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "ExponentialLR"]


class Optimizer:
    """Base class: holds parameters and the current learning rate."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        for param in self.params:
            if not param.requires_grad:
                raise ValueError("all optimized tensors must require grad")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        """Clear gradients of every managed parameter."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All mutable optimizer state (learning rate + subclass slots).

        Arrays are returned by reference; callers that persist them must
        copy (``np.savez`` does).  ``load_state_dict`` restores the
        snapshot exactly — a resumed training run steps with the same
        moments/velocities an uninterrupted one would have
        (byte-identical, test-enforced via the trainer checkpoints).
        """
        return {"lr": self.lr, **self._state_slots()}

    def load_state_dict(self, state: dict) -> None:
        expected = set(self.state_dict())
        missing = expected - set(state)
        if missing:
            raise ValueError(
                f"optimizer state is missing {sorted(missing)} "
                f"(expected {sorted(expected)})"
            )
        self.lr = float(state["lr"])
        self._load_state_slots(state)

    def _state_slots(self) -> dict:
        """Subclass hook: per-parameter state arrays (may contain None
        for parameters that have not stepped yet)."""
        return {}

    def _load_state_slots(self, state: dict) -> None:
        pass

    @staticmethod
    def _check_slot(name: str, values, n_params: int) -> list:
        values = list(values)
        if len(values) != n_params:
            raise ValueError(
                f"optimizer state slot {name!r} has {len(values)} "
                f"entries for {n_params} parameter(s)"
            )
        return values


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                if self._velocity[index] is None:
                    # State adopts the gradient's dtype, so single-
                    # precision training keeps its optimizer state (and
                    # memory traffic) in float32 while the float64
                    # master weights stay exact.
                    self._velocity[index] = np.zeros_like(grad)
                self._velocity[index] = (
                    self.momentum * self._velocity[index] + grad
                )
                grad = self._velocity[index]
            param.data = param.data - self.lr * grad

    def _state_slots(self) -> dict:
        return {"velocity": list(self._velocity)}

    def _load_state_slots(self, state: dict) -> None:
        self._velocity = self._check_slot(
            "velocity", state["velocity"], len(self.params)
        )


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self._m[index] is None:
                # Moment state adopts the gradient's dtype (float32
                # under single-precision training, complex64 for complex
                # grads); the |g|^2 second moment is always real.
                self._m[index] = np.zeros_like(grad)
                self._v[index] = np.zeros(grad.shape,
                                          dtype=np.asarray(grad).real.dtype)
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            grad_sq = (grad * np.conj(grad)).real
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad_sq
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _state_slots(self) -> dict:
        return {
            "step_count": self._step_count,
            "m": list(self._m),
            "v": list(self._v),
        }

    def _load_state_slots(self, state: dict) -> None:
        self._step_count = int(state["step_count"])
        self._m = self._check_slot("m", state["m"], len(self.params))
        self._v = self._check_slot("v", state["v"], len(self.params))


class _Scheduler:
    """Base learning-rate schedule; call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self._lr_at(self.epoch)

    def _lr_at(self, epoch: int) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Decay the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** (epoch // self.step_size)


class ExponentialLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` each epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        super().__init__(optimizer)
        self.gamma = float(gamma)

    def _lr_at(self, epoch: int) -> float:
        return self.base_lr * self.gamma ** epoch
