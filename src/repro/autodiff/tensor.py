"""Core tensor type for the reverse-mode automatic differentiation engine.

The engine replaces PyTorch in this reproduction (no GPU / torch available in
the build environment).  It provides exactly what a differentiable DONN needs:

* dense numpy-backed tensors, real or complex;
* a dynamically recorded computation graph with reverse-mode backward;
* broadcasting semantics identical to numpy;
* the PyTorch gradient convention for complex leaves: for a real scalar loss
  ``L`` and a complex tensor ``z``, ``z.grad == dL/d(Re z) + 1j * dL/d(Im z)``,
  so plain gradient descent on ``z.data`` is correct.

Primitive operations live in :mod:`repro.autodiff.ops`; this module only holds
the :class:`Tensor` container, the gradient-mode switch and the backward pass.
Operator overloads defer their import of :mod:`ops` to avoid a circular
dependency at import time.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "as_tensor",
]

#: Global flag: when False, no graph edges are recorded.
_GRAD_ENABLED: bool = True


def is_grad_enabled() -> bool:
    """Return whether operations currently record gradient graph edges."""
    return _GRAD_ENABLED


def set_grad_enabled(mode: bool) -> None:
    """Globally enable or disable graph recording."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(mode)


class no_grad:
    """Context manager that disables graph recording.

    Mirrors ``torch.no_grad``: inside the block every operation produces
    constant tensors with ``requires_grad=False``.  Usable as a decorator.
    """

    def __enter__(self) -> "no_grad":
        self._previous = is_grad_enabled()
        set_grad_enabled(False)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_grad_enabled(self._previous)

    def __call__(self, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


# A vjp entry maps the upstream gradient to this parent's gradient
# contribution (a numpy array broadcastable to the parent's shape).
VjpFn = Callable[[np.ndarray], np.ndarray]


class Tensor:
    """A numpy-backed tensor that records a reverse-mode autodiff graph.

    Parameters
    ----------
    data:
        Anything convertible by :func:`numpy.asarray`.  Boolean and integer
        arrays are allowed but cannot require gradients.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    dtype:
        Optional dtype override forwarded to numpy.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "name")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        dtype=None,
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=dtype)
        if requires_grad and not np.issubdtype(self.data.dtype, np.inexact):
            raise TypeError(
                f"only float/complex tensors can require gradients, got "
                f"dtype {self.data.dtype}"
            )
        self.requires_grad: bool = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        #: Graph edges: sequence of (parent tensor, vjp callable).
        self._parents: Tuple[Tuple["Tensor", VjpFn], ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_complex(self) -> bool:
        return np.iscomplexobj(self.data)

    @property
    def is_leaf(self) -> bool:
        """True when this tensor was not produced by a recorded operation."""
        return not self._parents

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        name_note = f", name={self.name!r}" if self.name else ""
        return f"Tensor({self.data!r}{grad_note}{name_note})"

    # ------------------------------------------------------------------
    # Conversion helpers
    # ------------------------------------------------------------------
    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> Union[float, complex]:
        """Return the single element of a scalar tensor as a Python number."""
        return self.data.item()

    def detach(self) -> "Tensor":
        """Return a graph-free view sharing the same storage."""
        out = Tensor(self.data)
        return out

    def clone(self) -> "Tensor":
        """Return a differentiable elementwise copy."""
        from . import ops

        return ops.clone(self)

    def astype(self, dtype) -> "Tensor":
        """Return a detached copy cast to ``dtype`` (no gradient flow)."""
        return Tensor(self.data.astype(dtype))

    # ------------------------------------------------------------------
    # Gradient machinery
    # ------------------------------------------------------------------
    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1`` and therefore requires a
            scalar (size-1) tensor, matching PyTorch semantics.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not "
                               "require gradients")
        if grad is None:
            if self.size != 1:
                raise RuntimeError(
                    "backward() without an explicit seed gradient requires a "
                    f"scalar tensor; got shape {self.shape}"
                )
            seed_dtype = self.data.dtype
            grad = np.ones_like(self.data, dtype=seed_dtype)
        else:
            grad = np.asarray(grad)
            if grad.shape != self.shape:
                raise ValueError(
                    f"seed gradient shape {grad.shape} does not match tensor "
                    f"shape {self.shape}"
                )

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.is_leaf or node.requires_grad:
                if node.grad is None:
                    node.grad = np.array(node_grad, copy=True)
                else:
                    node.grad = node.grad + node_grad
            for parent, vjp in node._parents:
                contrib = vjp(node_grad)
                contrib = _coerce_to_parent(contrib, parent)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + contrib
                else:
                    grads[key] = contrib

    # ------------------------------------------------------------------
    # Operator overloads (implementations live in ops.py)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from . import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from . import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from . import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import ops

        return ops.div(self, other)

    def __rtruediv__(self, other):
        from . import ops

        return ops.div(other, self)

    def __pow__(self, exponent):
        from . import ops

        return ops.power(self, exponent)

    def __neg__(self):
        from . import ops

        return ops.neg(self)

    def __matmul__(self, other):
        from . import ops

        return ops.matmul(self, other)

    def __getitem__(self, key):
        from . import ops

        return ops.getitem(self, key)

    # Convenience method forms -----------------------------------------
    def sum(self, axis=None, keepdims: bool = False):
        from . import ops

        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from . import ops

        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None):
        from . import ops

        return ops.transpose(self, axes)

    @property
    def T(self):
        return self.transpose()

    def conj(self):
        from . import ops

        return ops.conj(self)

    def abs(self):
        from . import ops

        return ops.absolute(self)

    @property
    def real(self):
        from . import ops

        return ops.real(self)

    @property
    def imag(self):
        from . import ops

        return ops.imag(self)


def as_tensor(value, dtype=None) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _topological_order(root: Tensor) -> list:
    """Return graph nodes reachable from ``root`` in reverse topological
    order (root first), computed iteratively to avoid recursion limits."""
    order: list = []
    visited: set = set()
    stack: list = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for parent, _ in node._parents:
            if id(parent) not in visited:
                stack.append((parent, False))
    order.reverse()
    return order


def _coerce_to_parent(contrib: np.ndarray, parent: Tensor) -> np.ndarray:
    """Project a raw vjp contribution onto the parent's shape and dtype.

    Handles two chores shared by every op:

    * **un-broadcasting** — summing the gradient over axes that numpy
      broadcasting expanded in the forward pass;
    * **realification** — a real-valued parent feeding a complex op receives
      only the real part of the complex gradient (the imaginary part
      corresponds to a direction the parameter cannot move in).
    """
    contrib = _unbroadcast(np.asarray(contrib), parent.shape)
    if not parent.is_complex and np.iscomplexobj(contrib):
        contrib = contrib.real
    return contrib


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse axes that were expanded from size 1.
    axes = tuple(
        i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad
