"""Neural-network functional layer built from autodiff primitives.

Provides the handful of classic operations the DONN training loss needs:
softmax, losses, activations and small statistics helpers.  Everything here
is a composition of :mod:`repro.autodiff.ops` primitives, so gradients come
for free and are covered by the primitive gradchecks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import ops
from .tensor import Tensor, as_tensor

__all__ = [
    "one_hot",
    "softmax",
    "log_softmax",
    "relu",
    "mse_softmax_loss",
    "cross_entropy",
    "variance",
    "normalize_unit_power",
]


def one_hot(labels, num_classes: int) -> Tensor:
    """Constant one-hot matrix (``float64``) from integer class labels."""
    labels = np.asarray(labels)
    if labels.ndim == 0:
        labels = labels[None]
    eye = np.eye(num_classes, dtype=np.float64)
    return Tensor(eye[labels])


def softmax(x, axis: int = -1) -> Tensor:
    """Numerically stabilized softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - ops.max(x, axis=axis, keepdims=True).detach()
    exps = ops.exp(shifted)
    return exps / ops.sum(exps, axis=axis, keepdims=True)


def log_softmax(x, axis: int = -1) -> Tensor:
    """Numerically stabilized log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - ops.max(x, axis=axis, keepdims=True).detach()
    logsum = ops.log(ops.sum(ops.exp(shifted), axis=axis, keepdims=True))
    return shifted - logsum


def relu(x) -> Tensor:
    """Rectified linear unit (gradient 0 at the kink)."""
    x = as_tensor(x)
    mask = Tensor((x.data > 0).astype(x.data.dtype))
    return x * mask


def mse_softmax_loss(logits, targets, num_classes: Optional[int] = None) -> Tensor:
    """The paper's training loss: ``l = || softmax(I) - t ||^2`` (Eq. 5).

    ``logits`` has shape ``(batch, classes)`` (detector-region intensity
    sums); ``targets`` are integer labels.  The squared L2 distance between
    the softmax distribution and the one-hot target is averaged over the
    batch.
    """
    logits = as_tensor(logits)
    if num_classes is None:
        num_classes = logits.shape[-1]
    target_dist = one_hot(targets, num_classes)
    diff = softmax(logits, axis=-1) - target_dist
    per_sample = ops.sum(diff * diff, axis=-1)
    return ops.mean(per_sample)


def cross_entropy(logits, targets) -> Tensor:
    """Mean cross-entropy from raw logits and integer labels."""
    logits = as_tensor(logits)
    logp = log_softmax(logits, axis=-1)
    batch = logp.shape[0]
    picked = ops.getitem(logp, (np.arange(batch), np.asarray(targets)))
    return -ops.mean(picked)


def variance(x, axis=None, ddof: int = 0, keepdims: bool = False) -> Tensor:
    """Differentiable variance (``ddof`` as in :func:`numpy.var`)."""
    x = as_tensor(x)
    if axis is None:
        count = x.size
    else:
        axes = axis if isinstance(axis, tuple) else (axis,)
        count = int(np.prod([x.shape[ax % x.ndim] for ax in axes]))
    if count - ddof <= 0:
        raise ValueError(f"variance needs count > ddof (count={count}, ddof={ddof})")
    centered = x - ops.mean(x, axis=axis, keepdims=True)
    squared = ops.sum(centered * centered, axis=axis, keepdims=keepdims)
    return squared * (1.0 / (count - ddof))


def normalize_unit_power(field) -> Tensor:
    """Scale a complex field so its total intensity (power) equals 1.

    Used to normalize encoded input fields so that detector intensities are
    comparable across images regardless of ink coverage.
    """
    field = as_tensor(field)
    power = ops.sum(ops.abs2(field), axis=(-2, -1), keepdims=True)
    return field / ops.sqrt(power + 1e-30)
