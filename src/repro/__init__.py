"""repro — Physics-aware roughness optimization for diffractive optical
neural networks (DONNs).

A full reproduction of Zhou et al., "Physics-aware Roughness Optimization for
Diffractive Optical Neural Networks" (DAC 2023), built on a from-scratch
numpy autodiff engine.  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the paper-vs-measured results.

Subpackage guide:

* :mod:`repro.backend`  — FFT backend dispatch (scipy/numpy) + precision policy
* :mod:`repro.autodiff` — reverse-mode autodiff over numpy (PyTorch stand-in)
* :mod:`repro.optics`   — free-space propagation, fabrication, crosstalk
* :mod:`repro.donn`     — the differentiable DONN model and trainer
* :mod:`repro.roughness`— roughness / intra-block smoothness metrics (Eq. 3-4, 8)
* :mod:`repro.sparsify` — block / unstructured / bank-balanced sparsity + SLR
* :mod:`repro.twopi`    — Gumbel-Softmax 2-pi periodic phase optimization
* :mod:`repro.data`     — synthetic MNIST/FMNIST/KMNIST/EMNIST-like datasets
* :mod:`repro.physics`  — physics-robustness scenarios (differential
  detection, partial coherence, discrete codesign, deployment gap)
* :mod:`repro.pipeline` — the paper's experiment recipes and table harness
* :mod:`repro.runtime`  — compiled inference fast path + shared kernel cache
* :mod:`repro.serve`    — model artifacts + batched, sharded inference service
"""

from . import (
    autodiff,
    backend,
    data,
    donn,
    optics,
    physics,
    pipeline,
    roughness,
    runtime,
    serve,
    sparsify,
    twopi,
    utils,
)

__version__ = "1.0.0"

__all__ = [
    "autodiff",
    "backend",
    "data",
    "donn",
    "optics",
    "physics",
    "pipeline",
    "roughness",
    "runtime",
    "serve",
    "sparsify",
    "twopi",
    "utils",
    "__version__",
]
