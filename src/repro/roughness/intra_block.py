"""Intra-block smoothness (paper Sec. III-D1, Eq. 8, Fig. 4).

After block sparsification the surviving blocks may still carry sharp
internal phase changes.  The intra-block penalty is the variance of each
block, averaged over all block slots; zeroed blocks have variance 0 and
therefore contribute nothing.  The paper's Fig. 4 worked example (6 x 6
matrix, block size 2, three zeroed blocks, "AvgVar 4.835") pins the exact
statistic: *sample* variance (ddof = 1) per block, averaged over all nine
block slots — reproduced in ``tests/roughness/test_paper_figures.py``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..autodiff import Tensor, as_tensor
from ..autodiff import functional as F
from ..autodiff import ops

__all__ = ["block_variances", "intra_block_smoothness",
           "intra_block_tensor"]


def _check_blocking(shape: Tuple[int, int], block_size: int) -> Tuple[int, int]:
    if block_size < 2:
        raise ValueError(
            f"block size must be >= 2 for a variance, got {block_size}"
        )
    rows, cols = shape
    if rows % block_size or cols % block_size:
        raise ValueError(
            f"mask shape {shape} is not divisible into "
            f"{block_size} x {block_size} blocks"
        )
    return rows // block_size, cols // block_size


def block_variances(phase: np.ndarray, block_size: int,
                    ddof: int = 1) -> np.ndarray:
    """Per-block variance grid of shape ``(rows/b, cols/b)``."""
    phase = np.asarray(phase, dtype=np.float64)
    if phase.ndim != 2:
        raise ValueError(f"phase mask must be 2-D, got shape {phase.shape}")
    br, bc = _check_blocking(phase.shape, block_size)
    blocks = phase.reshape(br, block_size, bc, block_size)
    blocks = blocks.transpose(0, 2, 1, 3).reshape(br, bc, -1)
    return blocks.var(axis=-1, ddof=ddof)


def intra_block_smoothness(phase: np.ndarray, block_size: int,
                           ddof: int = 1) -> float:
    """``R_intra(W)``: block variances averaged over all block slots.

    This is the "AvgVar" of the paper's Fig. 4.
    """
    return float(block_variances(phase, block_size, ddof=ddof).mean())


def intra_block_tensor(phase, block_size: int, ddof: int = 1) -> Tensor:
    """Differentiable ``R_intra(W)`` for the Eq. 8 training loss."""
    phase = as_tensor(phase)
    if phase.ndim != 2:
        raise ValueError(f"phase mask must be 2-D, got shape {phase.shape}")
    br, bc = _check_blocking(phase.shape, block_size)
    blocks = phase.reshape(br, block_size, bc, block_size)
    blocks = ops.transpose(blocks, (0, 2, 1, 3))
    blocks = blocks.reshape(br * bc, block_size * block_size)
    variances = F.variance(blocks, axis=1, ddof=ddof)
    return ops.mean(variances)
