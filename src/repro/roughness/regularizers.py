"""Training-loss regularizers plugging roughness into the DONN trainer.

Eq. 5:  L = ||softmax(I) - t||^2 + p * R(W)
Eq. 8:  L = ||softmax(I) - t||^2 + p * R(W) + q * R_intra(W)

Both callables operate on the *effective* (sparsity-masked) trainable
phases of every diffractive layer and sum the per-layer penalties, so they
compose with block sparsification exactly as the paper describes.
"""

from __future__ import annotations

from ..autodiff import Tensor
from .intra_block import intra_block_tensor
from .metrics import roughness_tensor

__all__ = ["RoughnessRegularizer", "IntraBlockRegularizer"]


class RoughnessRegularizer:
    """``p * sum_layers R(W_l)`` — the Eq. 5 roughness term.

    Parameters
    ----------
    p:
        Regularization factor (the paper's sweep finds an inflection
        around p = 0.1 normalized to its loss scale; see Fig. 6c).
    k:
        Neighborhood size, 4 or 8.
    """

    def __init__(self, p: float, k: int = 8) -> None:
        if p < 0:
            raise ValueError(f"regularization factor must be >= 0, got {p}")
        self.p = float(p)
        self.k = int(k)

    def __call__(self, model) -> Tensor:
        total = None
        for layer in model.layers:
            term = roughness_tensor(layer.effective_phase(), k=self.k)
            total = term if total is None else total + term
        return total * self.p

    def __repr__(self) -> str:
        return f"RoughnessRegularizer(p={self.p}, k={self.k})"


class IntraBlockRegularizer:
    """``q * sum_layers R_intra(W_l)`` — the Eq. 8 intra-block term."""

    def __init__(self, q: float, block_size: int) -> None:
        if q < 0:
            raise ValueError(f"regularization factor must be >= 0, got {q}")
        self.q = float(q)
        self.block_size = int(block_size)

    def __call__(self, model) -> Tensor:
        total = None
        for layer in model.layers:
            term = intra_block_tensor(layer.effective_phase(),
                                      self.block_size)
            total = term if total is None else total + term
        return total * self.q

    def __repr__(self) -> str:
        return (f"IntraBlockRegularizer(q={self.q}, "
                f"block_size={self.block_size})")
