"""Roughness reporting: the numbers the paper's tables print.

``R_overall`` (Sec. IV-B) is the average mask roughness over all
diffractive layers, computed on the *wrapped* phases a fabricated mask
realizes, optionally with the 2-pi add-on offsets of the post-processing
step applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..optics.fabrication import wrap_phase
from .metrics import overall_roughness, roughness

__all__ = ["RoughnessReport", "model_roughness"]


@dataclass(frozen=True)
class RoughnessReport:
    """Per-layer and overall roughness of a DONN's phase masks."""

    per_layer: tuple
    overall: float
    k: int

    def __str__(self) -> str:
        layers = ", ".join(f"{value:.2f}" for value in self.per_layer)
        return (f"R_overall={self.overall:.2f} (k={self.k}; "
                f"layers: {layers})")


def model_roughness(
    model,
    k: int = 8,
    offsets: Optional[Sequence[np.ndarray]] = None,
) -> RoughnessReport:
    """Roughness report for a DONN.

    Parameters
    ----------
    model:
        A :class:`repro.donn.DONN` (anything exposing ``phases()``).
    k:
        Neighborhood size.
    offsets:
        Optional per-layer 2-pi add-on masks (values in {0, 2 pi}) from
        the :mod:`repro.twopi` optimizer; applied on top of the wrapped
        phases to score the *smoothed fabrication*.
    """
    phases = model.phases(wrapped=True)
    if offsets is not None:
        if len(offsets) != len(phases):
            raise ValueError(
                f"got {len(offsets)} offset masks for {len(phases)} layers"
            )
        phases = [wrap_phase(p) + np.asarray(o)
                  for p, o in zip(phases, offsets)]
    per_layer = tuple(roughness(p, k=k) for p in phases)
    return RoughnessReport(
        per_layer=per_layer,
        overall=overall_roughness(phases, k=k),
        k=k,
    )
