"""Roughness modeling: metrics, regularizers and reports (Sec. III-B/III-D1).

* :func:`roughness` / :func:`roughness_tensor` — Eq. 3-4 mask roughness
  (numpy report form and differentiable training form);
* :func:`intra_block_smoothness` / :func:`intra_block_tensor` — Eq. 8
  per-block variance;
* :class:`RoughnessRegularizer` / :class:`IntraBlockRegularizer` — plug-in
  penalties for the DONN trainer;
* :func:`model_roughness` — the tables' ``R_overall`` score.
"""

from .intra_block import (
    block_variances,
    intra_block_smoothness,
    intra_block_tensor,
)
from .metrics import (
    neighbor_offsets,
    overall_roughness,
    roughness,
    roughness_map,
    roughness_tensor,
)
from .regularizers import IntraBlockRegularizer, RoughnessRegularizer
from .report import RoughnessReport, model_roughness

__all__ = [
    "neighbor_offsets",
    "roughness",
    "roughness_map",
    "roughness_tensor",
    "overall_roughness",
    "block_variances",
    "intra_block_smoothness",
    "intra_block_tensor",
    "RoughnessRegularizer",
    "IntraBlockRegularizer",
    "RoughnessReport",
    "model_roughness",
]
