"""Roughness modeling (paper Sec. III-B, Eqs. 3-4).

Per-pixel roughness is computed from the differences to the k in {4, 8}
neighboring pixels under one-pixel zero padding; the mask score sums the
per-pixel values.

Formula calibration
-------------------
Equation 3 writes ``R(p) = (1/k) * sum_n ||p_n - p||_2``.  Read literally
(absolute differences, summed) this does **not** reproduce the worked
example printed in the paper's Fig. 3 (roughness 23.78 / 25.80 / 25.88 on a
given 6 x 6 matrix at sparsity 0.33) — it overshoots ~4.5x and inverts the
non-structured vs bank-balanced ordering.  The variant that *does* match
all three printed values (to < 0.5 %, i.e. to the figure's display
precision) and their ordering is the L2 norm of the neighbor-difference
vector::

    R(p)  = || (p_n - p)_{n in N_k(p)} ||_2 / k
    R(W)  = (1/2) * sum_p R(p)

with 8 neighbors and zero padding.  The global 1/2 compensates the double
counting of each neighbor pair in the sum over pixels.  The calibration is
locked in by ``tests/roughness/test_paper_figures.py``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..autodiff import Tensor, as_tensor
from ..autodiff import ops

__all__ = [
    "neighbor_offsets",
    "roughness_map",
    "roughness",
    "roughness_tensor",
    "overall_roughness",
]


def neighbor_offsets(k: int) -> Tuple[Tuple[int, int], ...]:
    """The ``(dy, dx)`` offsets of the 4- or 8-neighborhood."""
    four = ((-1, 0), (1, 0), (0, -1), (0, 1))
    if k == 4:
        return four
    if k == 8:
        return four + ((-1, -1), (-1, 1), (1, -1), (1, 1))
    raise ValueError(f"k must be 4 or 8, got {k}")


def _neighbor_diff_stack(phase: np.ndarray, k: int) -> np.ndarray:
    """``(k, n, m)`` stack of ``p_neighbor - p`` with zero padding."""
    n, m = phase.shape
    padded = np.pad(phase, 1)
    return np.stack([
        padded[1 + dy:1 + dy + n, 1 + dx:1 + dx + m] - phase
        for dy, dx in neighbor_offsets(k)
    ])


def roughness_map(phase: np.ndarray, k: int = 8) -> np.ndarray:
    """Per-pixel roughness ``R(p)`` (Eq. 3) as an ``(n, m)`` array."""
    phase = np.asarray(phase, dtype=np.float64)
    if phase.ndim != 2:
        raise ValueError(f"phase mask must be 2-D, got shape {phase.shape}")
    diffs = _neighbor_diff_stack(phase, k)
    return np.sqrt((diffs ** 2).sum(axis=0)) / k


def roughness(phase: np.ndarray, k: int = 8) -> float:
    """Whole-mask roughness ``R(W)`` (Eq. 4, calibrated form)."""
    return float(roughness_map(phase, k).sum() / 2.0)


def roughness_tensor(phase, k: int = 8, eps: float = 1e-12) -> Tensor:
    """Differentiable ``R(W)`` for training (Eq. 5 regularization term).

    ``eps`` stabilizes the square root's gradient on perfectly flat
    neighborhoods (e.g. inside zeroed sparsity blocks), where the exact
    subgradient is unbounded.
    """
    phase = as_tensor(phase)
    if phase.ndim != 2:
        raise ValueError(f"phase mask must be 2-D, got shape {phase.shape}")
    n, m = phase.shape
    padded = ops.pad2d(phase, 1)
    total = None
    for dy, dx in neighbor_offsets(k):
        shifted = padded[1 + dy:1 + dy + n, 1 + dx:1 + dx + m]
        diff = shifted - phase
        sq = diff * diff
        total = sq if total is None else total + sq
    per_pixel = ops.sqrt(total + eps) * (1.0 / k)
    return ops.sum(per_pixel) * 0.5


def overall_roughness(phases: Sequence[np.ndarray], k: int = 8) -> float:
    """System score ``R_overall``: the average of ``R(W)`` over all layers
    (Sec. IV-B)."""
    phases = list(phases)
    if not phases:
        raise ValueError("need at least one phase mask")
    return float(np.mean([roughness(p, k) for p in phases]))
