"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
* ``quickstart`` — train a small DONN and print accuracy/roughness;
* ``recipe``     — run one of the paper's recipes (baseline, ours_a..d);
* ``table``      — reproduce a full paper table (five recipes);
* ``solvers``    — compare the 2-pi solvers (Gumbel-Softmax vs greedy)
  on a trained, sparsified mask.

Every command accepts ``--n/--train/--epochs/--seed`` so runs scale from
smoke tests to full experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .pipeline import (
    RECIPES,
    ExperimentConfig,
    format_comparison,
    format_table,
    run_recipe,
    run_table,
)

__all__ = ["build_parser", "main"]

FAMILIES = ("digits", "fashion", "kuzushiji", "letters")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Physics-aware roughness optimization for DONNs "
                    "(DAC'23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale_args(p):
        p.add_argument("--family", choices=FAMILIES, default="digits")
        p.add_argument("--n", type=int, default=40)
        p.add_argument("--train", type=int, default=900)
        p.add_argument("--test", type=int, default=300)
        p.add_argument("--epochs", type=int, default=10)
        p.add_argument("--seed", type=int, default=0)

    quick = sub.add_parser("quickstart", help="train a small DONN")
    add_scale_args(quick)

    recipe = sub.add_parser("recipe", help="run one paper recipe")
    add_scale_args(recipe)
    recipe.add_argument("--recipe", choices=RECIPES, default="ours_c")

    table = sub.add_parser("table", help="reproduce a full paper table")
    add_scale_args(table)
    table.add_argument(
        "--max-workers", type=int, default=None,
        help="fan recipes out across this many worker processes "
             "(results are byte-identical to the serial run)",
    )

    solvers = sub.add_parser("solvers",
                             help="compare 2-pi solvers on one mask")
    add_scale_args(solvers)
    return parser


def _config(args) -> ExperimentConfig:
    return ExperimentConfig.laptop(
        args.family,
        n=args.n,
        seed=args.seed,
        n_train=args.train,
        n_test=args.test,
        baseline_epochs=args.epochs,
    )


def _cmd_quickstart(args) -> int:
    result = run_recipe("baseline", _config(args))
    print(f"accuracy          : {result.accuracy * 100:.2f}%")
    print(f"R_overall (pre/post 2pi): {result.roughness_before:.2f} / "
          f"{result.roughness_after:.2f}")
    return 0


def _cmd_recipe(args) -> int:
    result = run_recipe(args.recipe, _config(args))
    print(f"{result.label}: accuracy {result.accuracy * 100:.2f}%  "
          f"R_pre {result.roughness_before:.2f}  "
          f"R_post {result.roughness_after:.2f}  "
          f"sparsity {result.sparsity * 100:.0f}%")
    return 0


def _cmd_table(args) -> int:
    table = run_table(_config(args), max_workers=args.max_workers)
    print(format_table(table))
    print()
    print(format_comparison(table))
    return 0


def _cmd_solvers(args) -> int:
    from .pipeline.ablations import compare_twopi_solvers

    result = run_recipe("ours_b", _config(args))
    phase = result.model.phases()[0]
    block = result.model.config.n // (
        result.model.config.n // _config(args).slr.block_size
    )
    comparison = compare_twopi_solvers(phase, block_size=block,
                                       seed=args.seed)
    print(f"2-pi solver comparison on a sparsified layer "
          f"(R before = {comparison['before']:.2f}):")
    for name in ("gumbel_softmax", "greedy", "gumbel_plus_greedy"):
        value = comparison[name]
        drop = (1 - value / comparison["before"]) * 100
        print(f"  {name:<20} R after = {value:8.2f}  ({drop:5.1f}% drop)")
    return 0


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "recipe": _cmd_recipe,
    "table": _cmd_table,
    "solvers": _cmd_solvers,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
