"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------
* ``run``         — run any registered recipe or a JSON/TOML experiment
  file; writes a self-describing run directory (``docs/experiments.md``);
  with ``--name`` the run streams ``events.jsonl``, checkpoints every
  epoch, survives Ctrl-C/SIGKILL and resumes with ``--resume``;
* ``sweep``       — run a grid/random sweep spec into a resumable sweep
  directory (supervised parallel workers, crash retry, ``--resume``);
* ``report``      — re-render paper-style tables from stored run
  directories, no recompute (``--strict`` hard-fails on corrupt runs);
  ``--compare A B`` diffs two runs roots across commits/configs instead;
* ``tail``        — live terminal dashboard over the ``events.jsonl``
  streams of a run/sweep directory (``--once`` for CI, ``--html`` for a
  static export);
* ``bench-compare`` — diff two ``BENCH_*.json`` snapshots against their
  embedded regression thresholds (non-zero exit on regression);
* ``quickstart``  — train a small DONN and print accuracy/roughness;
* ``recipe``      — run one of the paper's recipes (baseline, ours_a..d);
* ``table``       — reproduce a full paper table (five recipes);
* ``solvers``     — compare the 2-pi solvers (Gumbel-Softmax vs greedy)
  on a trained, sparsified mask;
* ``serve``       — expose a saved model artifact *or run directory*
  over HTTP/JSON (micro-batched, optionally sharded —
  see ``docs/serving.md``);
* ``bench-serve`` — load-test the serving stack (throughput, p50/p99).

``quickstart``/``recipe``/``table`` are thin aliases over the same
registry-driven path ``run`` uses (their output is golden-test enforced).
Training commands accept ``--n/--train/--epochs/--seed`` so runs scale
from smoke tests to full experiments, and ``--save`` to persist the
trained model as a self-contained artifact the serving commands consume.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .pipeline import (
    RECIPES,
    ExperimentConfig,
    format_comparison,
    format_table,
    run_recipe,
    run_table,
)

__all__ = ["build_parser", "main"]

FAMILIES = ("digits", "fashion", "kuzushiji", "letters")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Physics-aware roughness optimization for DONNs "
                    "(DAC'23 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scale_args(p, defaults=True):
        # defaults=False leaves every flag None so the caller can tell
        # "user passed it" from "parser default" (`repro run` rejects
        # scale flags next to an experiment file instead of silently
        # ignoring them).
        p.add_argument("--family", choices=FAMILIES,
                       default="digits" if defaults else None)
        p.add_argument("--n", type=int, default=40 if defaults else None)
        p.add_argument("--train", type=int,
                       default=900 if defaults else None)
        p.add_argument("--test", type=int,
                       default=300 if defaults else None)
        p.add_argument("--epochs", type=int,
                       default=10 if defaults else None)
        p.add_argument("--seed", type=int, default=0 if defaults else None)
        p.add_argument(
            "--precision", choices=("single", "double"),
            default="double" if defaults else None,
            help="training compute precision: 'single' runs the fused "
                 "FFT path in complex64 (roughly half the memory "
                 "traffic); scoring always runs in double",
        )

    def add_save_arg(p):
        p.add_argument(
            "--save", metavar="PATH", default=None,
            help="persist the trained model as a self-contained artifact "
                 "(.npz) for `repro serve` / `repro bench-serve`",
        )

    run_p = sub.add_parser(
        "run",
        help="run a registered recipe or a JSON/TOML experiment file; "
             "writes a self-describing run directory",
    )
    run_p.add_argument(
        "target",
        help="a registered recipe name (baseline, ours_a..d, noisy, or "
             "anything added via register_recipe) or a path to a "
             "JSON/TOML experiment file",
    )
    add_scale_args(run_p, defaults=False)
    run_p.add_argument(
        "--set", action="append", default=[], metavar="KEY=VALUE",
        help="dotted-key config override (repeatable), e.g. "
             "--set slr.block_size=5 --set twopi.iterations=100; applies "
             "on top of the file/base config",
    )
    run_p.add_argument(
        "--runs-dir", default="runs", metavar="DIR",
        help="root directory run artifacts are written under "
             "(default: ./runs)",
    )
    run_p.add_argument(
        "--name", default=None, metavar="NAME",
        help="run directory name (default: "
             "<family>-n<n>-<recipe>-seed<seed>)",
    )
    run_p.add_argument("--verbose", action="store_true",
                       help="per-epoch training progress")
    run_p.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted run (needs --name): training "
             "resumes from the run directory's latest checkpoint and "
             "the final result is byte-identical to an uninterrupted run",
    )
    run_p.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="training checkpoint cadence in epochs (default: 1; only "
             "applies with --name, which fixes the run directory "
             "up front)",
    )

    sweep_p = sub.add_parser(
        "sweep",
        help="run a grid/random sweep spec into a resumable sweep "
             "directory (see docs/experiments.md)",
    )
    sweep_p.add_argument(
        "spec", nargs="?", default=None,
        help="a JSON/TOML sweep spec (experiment-file schema plus a "
             "'grid' or 'random' section); omit with --resume",
    )
    sweep_p.add_argument(
        "--out", default=None, metavar="DIR",
        help="sweep directory to create (default: sweeps/<spec stem>)",
    )
    sweep_p.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume an existing sweep directory: completed points are "
             "skipped, half-trained ones continue from their "
             "checkpoints, failed ones re-run",
    )
    sweep_p.add_argument(
        "--max-workers", type=int, default=1,
        help="supervised worker processes (default: 1, in-process); "
             "crashes are retried with backoff and recorded as "
             "structured failures when retries run out",
    )
    sweep_p.add_argument(
        "--max-retries", type=int, default=2,
        help="crash retries per point before it is recorded as failed "
             "(default: 2)",
    )
    sweep_p.add_argument(
        "--timeout-s", type=float, default=None, metavar="S",
        help="per-point wall-clock budget; a worker over it is killed "
             "and the point retried (default: none)",
    )
    sweep_p.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="training checkpoint cadence in epochs (default: 1)",
    )
    sweep_p.add_argument(
        "--faults", default=None, metavar="PLAN",
        help="chaos testing: one-shot point faults, e.g. "
             "'kill:point=0,epoch=1;hang:point=2' (kinds: kill, hang, "
             "diverge)",
    )
    sweep_p.add_argument("--verbose", action="store_true",
                         help="per-epoch training progress (serial path)")

    report = sub.add_parser(
        "report",
        help="re-render paper-style tables from stored run directories "
             "(no recompute)",
    )
    report.add_argument("runs_dir", metavar="RUNS_DIR", nargs="?",
                        default=None,
                        help="a runs root (or a single run directory)")
    report.add_argument(
        "--strict", action="store_true",
        help="treat a corrupt run directory as a hard error instead of "
             "skipping it with a warning (CI gates)",
    )
    report.add_argument(
        "--compare", nargs=2, metavar=("A", "B"), default=None,
        help="diff two runs roots instead of rendering tables: matched "
             "run directories get metric deltas and per-stage wall "
             "times; exits 1 if B regresses accuracy vs A",
    )
    report.add_argument(
        "--tolerance", type=float, default=1e-6, metavar="EPS",
        help="accuracy drop beyond this counts as a regression with "
             "--compare (default: 1e-6, i.e. any drop)",
    )

    quick = sub.add_parser("quickstart", help="train a small DONN")
    add_scale_args(quick)
    add_save_arg(quick)

    recipe = sub.add_parser("recipe", help="run one paper recipe")
    add_scale_args(recipe)
    add_save_arg(recipe)
    recipe.add_argument("--recipe", choices=RECIPES, default="ours_c")

    table = sub.add_parser("table", help="reproduce a full paper table")
    add_scale_args(table)
    table.add_argument(
        "--max-workers", type=int, default=None,
        help="fan recipes out across this many worker processes "
             "(results are byte-identical to the serial run)",
    )
    table.add_argument(
        "--runs-dir", default=None, metavar="DIR",
        help="also persist every recipe as a run directory under DIR "
             "(re-renderable later with `repro report DIR`)",
    )

    solvers = sub.add_parser("solvers",
                             help="compare 2-pi solvers on one mask")
    add_scale_args(solvers)

    def add_serve_args(p, model_required=True):
        p.add_argument("--model", required=model_required, metavar="PATH",
                       help="model artifact saved with --save / ModelStore, "
                            "or a run directory written by `repro run`")
        p.add_argument("--precision", choices=("single", "double"),
                       default=None,
                       help="engine precision (default: the precision "
                            "recorded in the artifact, else double)")
        p.add_argument("--max-batch", type=int, default=32,
                       help="micro-batching flush size")
        p.add_argument("--max-delay-ms", type=float, default=2.0,
                       help="max milliseconds a lone request waits to be "
                            "coalesced")
        p.add_argument("--shards", type=int, default=1,
                       help="engine workers (each holds one engine)")
        p.add_argument("--backend", choices=("thread", "process"),
                       default="thread")
        p.add_argument("--cache-size", type=int, default=0,
                       help="LRU result-cache entries for repeated "
                            "identical requests (0 disables)")
        p.add_argument("--max-inflight", type=int, default=None,
                       metavar="N",
                       help="admission window: requests beyond N "
                            "in flight are shed with 429 + Retry-After "
                            "(default: unbounded)")
        p.add_argument("--deadline-ms", type=float, default=None,
                       metavar="MS",
                       help="default per-request deadline; expired "
                            "requests fail fast with 504")
        p.add_argument("--faults", default=None, metavar="PLAN",
                       help="fault-injection plan for chaos testing, "
                            "e.g. 'kill:shard=1,after=3' or "
                            "'kill:replica=1,after=5' (also read "
                            "from $REPRO_FAULTS; see docs/serving.md)")
        p.add_argument("--replicas", type=int, default=1, metavar="N",
                       help="run N process-backed server replicas behind "
                            "a health-probing router with failover "
                            "(default: a single in-process server)")
        p.add_argument("--hedge-ms", type=float, default=None, metavar="MS",
                       help="with --replicas > 1: duplicate requests "
                            "still unanswered after MS to a second "
                            "replica, first answer wins")

    serve = sub.add_parser(
        "serve", help="serve a model artifact over HTTP/JSON"
    )
    add_serve_args(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="0 binds an ephemeral port")

    bench = sub.add_parser(
        "bench-serve",
        help="load-test the serving stack (throughput, p50/p99 latency)",
    )
    add_serve_args(bench, model_required=False)
    bench.add_argument("--requests", type=int, default=512)
    bench.add_argument("--concurrency", type=int, default=64)
    bench.add_argument("--url", default=None, metavar="URL",
                       help="load-test a live `repro serve` endpoint over "
                            "HTTP instead of an in-process server")
    bench.add_argument("--check", action="store_true",
                       help="verify served predictions are byte-identical "
                            "to a serial engine before timing")
    bench.add_argument("--output", default=None, metavar="JSON",
                       help="write the stats snapshot here")

    tail_p = sub.add_parser(
        "tail",
        help="live terminal dashboard over the events.jsonl streams of "
             "a run, sweep, or runs root",
    )
    tail_p.add_argument(
        "path", metavar="DIR",
        help="a sweep directory (sweep.json), a single run directory, "
             "or a runs root containing run directories",
    )
    tail_p.add_argument(
        "--once", action="store_true",
        help="render one snapshot and exit (non-TTY/CI friendly)",
    )
    tail_p.add_argument(
        "--html", default=None, metavar="PATH",
        help="write a static HTML snapshot to PATH and exit",
    )
    tail_p.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh period in follow mode (default: 1.0s)",
    )

    bench_cmp = sub.add_parser(
        "bench-compare",
        help="diff two BENCH_*.json snapshots; non-zero exit on "
             "regression against the embedded thresholds",
    )
    bench_cmp.add_argument("old", metavar="OLD_JSON",
                           help="baseline snapshot (e.g. the committed "
                                "benchmarks/BENCH_*.json)")
    bench_cmp.add_argument("new", metavar="NEW_JSON",
                           help="candidate snapshot to gate")
    bench_cmp.add_argument(
        "--max-drop", type=float, default=None, metavar="FRAC",
        help="also fail if any shared case's mean time grew by more "
             "than this fraction (e.g. 0.25 = 25%% slower); off by "
             "default because CI machines are noisy",
    )

    recipes_p = sub.add_parser(
        "recipes",
        help="list every registered recipe with its stage composition",
    )
    recipes_p.add_argument(
        "--paper-only", action="store_true",
        help="only the recipes marked as published table rows",
    )
    return parser


def _config(args) -> ExperimentConfig:
    return ExperimentConfig.laptop(
        args.family,
        n=args.n,
        seed=args.seed,
        n_train=args.train,
        n_test=args.test,
        baseline_epochs=args.epochs,
        precision=getattr(args, "precision", None) or "double",
    )


def _save_result(args, result, recipe: str) -> None:
    """Persist a trained recipe result when ``--save`` was given."""
    if getattr(args, "save", None) is None:
        return
    path = result.model.save(args.save, metadata={
        "recipe": recipe,
        "family": args.family,
        "accuracy": result.accuracy,
        "roughness_before": result.roughness_before,
        "roughness_after": result.roughness_after,
        "seed": args.seed,
    }, precision=args.precision)
    print(f"saved model artifact: {path}")


def _recipe_summary(result) -> str:
    """The one-line recipe summary (shared by `recipe` and `run`)."""
    return (f"{result.label}: accuracy {result.accuracy * 100:.2f}%  "
            f"R_pre {result.roughness_before:.2f}  "
            f"R_post {result.roughness_after:.2f}  "
            f"sparsity {result.sparsity * 100:.0f}%")


#: `repro run` scale flags and their recipe-name-target defaults
#: (mirroring `repro recipe`); None = "not passed by the user".
_RUN_SCALE_DEFAULTS = {
    "family": "digits", "n": 40, "train": 900, "test": 300,
    "epochs": 10, "seed": 0, "precision": "double",
}


def _cmd_run(args) -> int:
    from .pipeline import (
        apply_overrides,
        get_recipe,
        load_experiment,
        parse_override_items,
        save_run,
    )
    from .pipeline.events import EVENTS_FILE, EventLog
    from .pipeline.experiment_io import EXPERIMENT_FILE_SUFFIXES
    from .pipeline.runs import RUN_FILE
    from .utils import InterruptRequested, graceful_sigint

    target = Path(args.target)
    try:
        overrides = parse_override_items(args.set)
        if target.suffix in EXPERIMENT_FILE_SUFFIXES or target.is_file():
            passed = [flag for flag in _RUN_SCALE_DEFAULTS
                      if getattr(args, flag) is not None]
            if passed:
                print(
                    f"--{'/--'.join(passed)} do not apply to experiment "
                    f"files ({target} fixes the scale); use --set "
                    "overrides instead (e.g. --set baseline_epochs=5)",
                    file=sys.stderr,
                )
                return 2
            spec = load_experiment(target)
            if spec.recipe is None:
                print(f"{target} does not set a recipe; add "
                      '"recipe": "<name>" to the file', file=sys.stderr)
                return 2
            recipe_name, config = spec.recipe, spec.config
        else:
            for flag, default in _RUN_SCALE_DEFAULTS.items():
                if getattr(args, flag) is None:
                    setattr(args, flag, default)
            recipe_name, config = args.target, _config(args)
        get_recipe(recipe_name)  # fail fast with the registered names
        config = apply_overrides(config, overrides)
        if args.checkpoint_every < 1:
            print("--checkpoint-every must be >= 1", file=sys.stderr)
            return 2
        if args.resume and not args.name:
            print("--resume needs --name (it fixes the run directory "
                  "the checkpoints live in)", file=sys.stderr)
            return 2
        if args.name:
            # Validate the destination *before* spending the training
            # compute: a collision after run_recipe would discard the
            # finished result.
            run_dir = Path(args.runs_dir) / args.name
            if run_dir.exists() and any(run_dir.iterdir()):
                if (run_dir / RUN_FILE).exists():
                    print(f"run directory {run_dir} already exists and "
                          "holds a completed run; pick another --name",
                          file=sys.stderr)
                    return 2
                if not args.resume:
                    print(f"run directory {run_dir} already exists and "
                          "is not empty; pick another --name, or pass "
                          "--resume to continue an interrupted run",
                          file=sys.stderr)
                    return 2
    except (ValueError, FileNotFoundError) as exc:
        print(exc, file=sys.stderr)
        return 2
    # With --name the run directory is known up front, so the run gets
    # the full fault-tolerance kit: a live events.jsonl stream and
    # per-epoch crash-safe checkpoints (--resume picks them up).
    events = EventLog.null()
    checkpoint_dir = None
    if args.name:
        run_dir = Path(args.runs_dir) / args.name
        run_dir.mkdir(parents=True, exist_ok=True)
        events = EventLog(run_dir / EVENTS_FILE)
        checkpoint_dir = run_dir / "checkpoints"
    try:
        with events, graceful_sigint():
            result = run_recipe(
                recipe_name, config, verbose=args.verbose, events=events,
                checkpoint_dir=checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
            )
    except InterruptRequested as exc:
        print(f"\ninterrupted ({exc}); the latest checkpoint is saved — "
              "resume with the same command plus --resume",
              file=sys.stderr)
        return 130
    run_dir = save_run(result, config, args.runs_dir, name=args.name,
                       in_progress_ok=bool(args.name))
    if checkpoint_dir is not None:
        import shutil

        shutil.rmtree(checkpoint_dir, ignore_errors=True)
    print(_recipe_summary(result))
    for record in result.stages:
        print(f"  stage {record.name:<13} {record.wall_time:8.2f}s")
    print(f"run directory: {run_dir}")
    return 0


def _cmd_sweep(args) -> int:
    from .pipeline import sweep as sweep_mod
    from .utils import graceful_sigint

    try:
        faults = sweep_mod.parse_faults(args.faults)
        if args.resume:
            if args.spec is not None:
                print("pass either a spec file (fresh sweep) or "
                      "--resume DIR, not both", file=sys.stderr)
                return 2
            sweep_dir, spec = Path(args.resume), None
        else:
            if args.spec is None:
                print("sweep needs a spec file (fresh sweep) or "
                      "--resume DIR", file=sys.stderr)
                return 2
            spec = sweep_mod.load_sweep_spec(args.spec)
            sweep_dir = (Path(args.out) if args.out
                         else Path("sweeps") / Path(args.spec).stem)
        with graceful_sigint():
            summary = sweep_mod.run_sweep_dir(
                sweep_dir, spec,
                resume=args.resume is not None,
                max_workers=args.max_workers,
                max_retries=args.max_retries,
                timeout_s=args.timeout_s,
                checkpoint_every=args.checkpoint_every,
                faults=faults,
                verbose=args.verbose,
                echo=print,
            )
    except (ValueError, FileNotFoundError, FileExistsError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(sweep_mod.format_sweep(sweep_dir))
    print()
    print(f"sweep {sweep_dir}: {summary.completed} completed, "
          f"{summary.skipped} skipped, {summary.failed} failed, "
          f"{summary.pending} pending")
    if summary.interrupted:
        print(f"interrupted; continue with: repro sweep --resume "
              f"{sweep_dir}", file=sys.stderr)
        return 130
    return 1 if summary.failed else 0


def _cmd_report(args) -> int:
    from itertools import groupby

    from .pipeline import format_scenarios, load_runs, table_from_runs

    if args.compare is not None:
        if args.runs_dir is not None:
            print("pass either RUNS_DIR or --compare A B, not both",
                  file=sys.stderr)
            return 2
        from .obs import compare_runs, format_run_comparison

        try:
            comparison = compare_runs(args.compare[0], args.compare[1],
                                      tolerance=args.tolerance)
        except (FileNotFoundError, ValueError) as exc:
            print(exc, file=sys.stderr)
            return 2
        print(format_run_comparison(comparison), end="")
        return 1 if comparison["regressions"] else 0
    if args.runs_dir is None:
        print("report needs RUNS_DIR (render tables) or --compare A B "
              "(diff two runs roots)", file=sys.stderr)
        return 2
    try:
        runs = load_runs(args.runs_dir, strict=args.strict)
    except (FileNotFoundError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    runs = sorted(runs, key=lambda run: run.family)
    first = True
    for family, group in groupby(runs, key=lambda run: run.family):
        if not first:
            print()
        first = False
        table = table_from_runs(list(group))
        print(format_table(table))
        print()
        print(format_comparison(table))
    # Physics-scenario runs get their trained-vs-deployed columns; the
    # block is empty (and unprinted) for legacy runs, so existing report
    # output stays byte-identical.
    scenarios = format_scenarios(runs)
    if scenarios:
        print()
        print(scenarios)
    print()
    print(f"rendered {len(runs)} stored run(s) from {args.runs_dir}")
    return 0


def _cmd_quickstart(args) -> int:
    result = run_recipe("baseline", _config(args))
    print(f"accuracy          : {result.accuracy * 100:.2f}%")
    print(f"R_overall (pre/post 2pi): {result.roughness_before:.2f} / "
          f"{result.roughness_after:.2f}")
    _save_result(args, result, "baseline")
    return 0


def _cmd_recipe(args) -> int:
    result = run_recipe(args.recipe, _config(args))
    print(_recipe_summary(result))
    _save_result(args, result, args.recipe)
    return 0


def _cmd_table(args) -> int:
    table = run_table(_config(args), max_workers=args.max_workers,
                      runs_dir=args.runs_dir)
    print(format_table(table))
    print()
    print(format_comparison(table))
    return 0


def _cmd_solvers(args) -> int:
    from .pipeline.ablations import compare_twopi_solvers

    config = _config(args)
    result = run_recipe("ours_b", config)
    phase = result.model.phases()[0]
    # The mask was sparsified on the config's block grid; compare the
    # solvers on that same grid.
    comparison = compare_twopi_solvers(phase,
                                       block_size=config.slr.block_size,
                                       seed=args.seed)
    print(f"2-pi solver comparison on a sparsified layer "
          f"(R before = {comparison['before']:.2f}):")
    for name in ("gumbel_softmax", "greedy", "gumbel_plus_greedy"):
        value = comparison[name]
        drop = (1 - value / comparison["before"]) * 100
        print(f"  {name:<20} R after = {value:8.2f}  ({drop:5.1f}% drop)")
    return 0


def _serve_config(args, host=None, port=None):
    from .serve import ServeConfig

    kwargs = dict(
        precision=args.precision,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1e3,
        shards=args.shards,
        backend=args.backend,
        cache_size=args.cache_size,
        max_inflight=args.max_inflight,
        default_deadline_ms=args.deadline_ms,
        faults=args.faults,
    )
    if host is not None:
        kwargs["host"] = host
    if port is not None:
        kwargs["port"] = port
    return ServeConfig(**kwargs)


def _serve_cluster(args, artifact) -> int:
    """``repro serve --replicas N``: ReplicaSet + Router, park, drain
    gracefully on Ctrl-C."""
    import time

    from .serve import ReplicaSet, Router, RouterConfig

    config = _serve_config(args)
    with ReplicaSet(artifact, replicas=args.replicas, config=config) as rs:
        with Router(replica_set=rs,
                    config=RouterConfig(hedge_ms=args.hedge_ms)) as router:
            frontend = router.serve_http(host=args.host, port=args.port)
            print(f"serving {artifact} with {args.replicas} replicas "
                  f"behind router at {frontend.url}")
            for replica_id, url in rs.endpoints():
                print(f"  {replica_id}: {url}")
            print("  POST /v1/predict | /v1/logits | /v1/intensity ; "
                  "GET /healthz | /metrics ; POST /admin/drain   "
                  "(Ctrl-C drains and stops)")
            try:
                while True:
                    time.sleep(3600)
            except KeyboardInterrupt:
                print("\ndraining (new requests get 503 + Retry-After)")
                router.begin_drain()
                rs.begin_drain()
    return 0


def _cmd_serve(args) -> int:
    from .serve import Server, resolve_artifact

    artifact = resolve_artifact(args.model)
    if args.replicas > 1:
        return _serve_cluster(args, artifact)
    server = Server(artifact=artifact,
                    config=_serve_config(args, args.host, args.port))
    with server:
        server.warmup()
        frontend = server.serve_http()
        server_info = server.info()
        info = server_info["model"]["config"]
        print(f"serving {artifact} "
              f"(n={info['n']}, {info['num_layers']} layers) at "
              f"{frontend.url}")
        print(f"  precision={server_info['precision']} "
              f"max_batch={args.max_batch} "
              f"shards={args.shards} backend={args.backend} "
              f"cache_size={args.cache_size}")
        print("  POST /v1/predict | /v1/logits | /v1/intensity ; "
              "GET /healthz | /v1/model   (Ctrl-C stops)")
        try:
            # The frontend already accepts on its own thread; just park
            # the main thread until interrupted (Server.stop on exit
            # shuts the accept loop down cleanly).  time.sleep is
            # reliably interruptible by SIGINT, unlike a bare lock wait.
            import time

            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            print("\nshutting down")
    return 0


def _cmd_bench_serve(args) -> int:
    import numpy as np

    from .serve import (
        Server,
        http_sender,
        resolve_artifact,
        run_load,
        write_snapshot,
    )

    rng = np.random.default_rng(0)
    samples = rng.random((64, 28, 28))

    if args.url is not None:
        if args.check:
            print("--check needs an in-process server: pass --model "
                  "instead of --url", file=sys.stderr)
            return 2
        send = http_sender(args.url)
        stats = run_load(send, samples, args.requests, args.concurrency)
        snapshot = {"target": args.url, "load": stats}
    elif args.replicas > 1:
        if args.model is None:
            print("bench-serve needs --model (or --url for a live server)",
                  file=sys.stderr)
            return 2
        return _bench_serve_cluster(args, samples)
    else:
        if args.model is None:
            print("bench-serve needs --model (or --url for a live server)",
                  file=sys.stderr)
            return 2
        artifact = resolve_artifact(args.model)
        config = _serve_config(args)
        plan = config.resolved_faults()
        with Server(artifact=artifact, config=config) as server:
            server.warmup()
            mismatches = [0]
            if args.check:
                from .utils.serialization import load_model

                reference = load_model(artifact).inference_engine(
                    precision=server.resolved_precision()
                )
                expected = {
                    np.ascontiguousarray(sample).tobytes():
                    reference.predict(sample[None])[0]
                    for sample in samples
                }

                def send(sample):
                    row = np.asarray(
                        server.submit("predict", sample).result()
                    )
                    key = np.ascontiguousarray(sample).tobytes()
                    if not np.array_equal(row, expected[key]):
                        mismatches[0] += 1
                    return row
            else:
                send = (lambda sample:
                        server.submit("predict", sample).result())
            stats = run_load(send, samples, args.requests, args.concurrency)
            stats["batcher"] = server.stats()["batcher"]
            if plan:
                # Chaos run: drive traffic until the respawned shards
                # are folded back in and /healthz reads plain "ok".
                import time as _time

                give_up = _time.monotonic() + 30.0
                while (server.health()["status"] != "ok"
                       and _time.monotonic() < give_up):
                    server.settle(timeout=5.0)
                    for future in [server.submit("predict", sample)
                                   for sample in samples[:8]]:
                        future.result()
                health = server.health()
                stats["health"] = health
                print(f"faults: {plan} -> health {health['status']} "
                      f"(restarts {health['restarts']}, "
                      f"failures {health['failures']}, "
                      f"retries {health['retries']})")
                if health["status"] != "ok":
                    print("FAULT RECOVERY FAILED: /healthz did not return "
                          "to ok", file=sys.stderr)
                    return 1
            if args.check:
                if mismatches[0]:
                    print(f"CHECK FAILED: {mismatches[0]} served "
                          f"prediction(s) differ from serial engine",
                          file=sys.stderr)
                    return 1
                print("check: served predictions byte-identical to serial "
                      "engine (verified under load)")
            snapshot = {"target": str(artifact), "load": stats}
    print(f"{stats['requests']} requests, concurrency "
          f"{stats['concurrency']}: {stats['throughput_rps']} req/s  "
          f"p50 {stats['p50_ms']} ms  p90 {stats['p90_ms']} ms  "
          f"p99 {stats['p99_ms']} ms")
    if args.output:
        write_snapshot(args.output, snapshot)
        print(f"wrote {args.output}")
    return 0


def _bench_serve_cluster(args, samples) -> int:
    """``repro bench-serve --replicas N``: the closed loop through a
    real ReplicaSet + Router over HTTP, with optional chaos recovery
    and byte-identity verification."""
    import time

    import numpy as np

    from .serve import (
        ReplicaSet,
        Router,
        RouterConfig,
        http_sender,
        resolve_artifact,
        run_load,
        write_snapshot,
    )

    artifact = resolve_artifact(args.model)
    config = _serve_config(args)
    plan = config.resolved_faults()
    mismatches = [0]
    with ReplicaSet(artifact, replicas=args.replicas, config=config) as rs:
        router = Router(
            replica_set=rs,
            config=RouterConfig(probe_interval=0.05,
                                hedge_ms=args.hedge_ms))
        router.start()
        url = router.serve_http(port=0).url
        raw_send = http_sender(url)
        if args.check:
            from .utils.serialization import load_model

            reference = load_model(artifact).inference_engine(
                precision=config.precision or "double")
            expected = {
                np.ascontiguousarray(sample).tobytes():
                int(reference.predict(sample[None])[0])
                for sample in samples
            }

            def send(sample):
                label = raw_send(sample)["predictions"]
                key = np.ascontiguousarray(sample).tobytes()
                if int(label) != expected[key]:
                    mismatches[0] += 1
                return label
        else:
            send = raw_send
        stats = run_load(send, samples, args.requests, args.concurrency)
        stats["replicas"] = args.replicas
        if plan:
            # Chaos run: drive probe rounds and traffic until respawned
            # replicas rejoin and the router aggregates plain "ok".
            give_up = time.monotonic() + 60.0
            while (router.health()["status"] != "ok"
                   and time.monotonic() < give_up):
                rs.settle(timeout=10.0)
                router.probe_once()
                for sample in samples[:max(4, 2 * args.replicas)]:
                    send(sample)
            health = router.health()
            supervision = rs.stats()
            counters = router.stats()["counters"]
            stats["health"] = health
            print(f"faults: {plan} -> health {health['status']} "
                  f"(replica respawns {supervision['restarts']}, "
                  f"failovers "
                  f"{int(counters.get('repro_router_failovers_total', 0))}, "
                  f"quarantined {supervision['quarantined']})")
            if health["status"] != "ok":
                print("FAULT RECOVERY FAILED: router /healthz did not "
                      "return to ok", file=sys.stderr)
                router.stop()
                return 1
        if args.check:
            if mismatches[0]:
                print(f"CHECK FAILED: {mismatches[0]} routed "
                      f"prediction(s) differ from serial engine",
                      file=sys.stderr)
                router.stop()
                return 1
            print("check: routed predictions byte-identical to serial "
                  "engine (verified under load)")
        router.stop()
    print(f"{stats['requests']} requests, concurrency "
          f"{stats['concurrency']}: {stats['throughput_rps']} req/s  "
          f"p50 {stats['p50_ms']} ms  p90 {stats['p90_ms']} ms  "
          f"p99 {stats['p99_ms']} ms  (replicas {args.replicas})")
    if args.output:
        write_snapshot(args.output, {"target": str(artifact),
                                     "replicas": args.replicas,
                                     "load": stats})
        print(f"wrote {args.output}")
    return 0


def _cmd_tail(args) -> int:
    from .obs import follow, render_html, render_text, snapshot

    try:
        if args.html:
            Path(args.html).write_text(render_html(snapshot(args.path)))
            print(f"wrote {args.html}")
        elif args.once:
            print(render_text(snapshot(args.path)), end="")
        else:
            follow(args.path, interval=args.interval)
    except (FileNotFoundError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    return 0


def _cmd_recipes(args) -> int:
    from .pipeline import get_recipe, paper_recipe_names, recipe_names

    names = paper_recipe_names() if args.paper_only else recipe_names()
    width = max(len(name) for name in names)
    for name in names:
        recipe = get_recipe(name)
        marker = "*" if recipe.paper_row else " "
        stages = " -> ".join(recipe.stage_names())
        print(f"{marker} {name:<{width}}  [{recipe.label}]  {stages}")
    print()
    print(f"{len(names)} registered recipe(s); * = published table row. "
          "Run one with `repro run <name>`.")
    return 0


def _cmd_bench_compare(args) -> int:
    from .obs import bench_compare, format_bench_compare

    try:
        result = bench_compare(args.old, args.new,
                               max_drop=args.max_drop)
    except (FileNotFoundError, ValueError) as exc:
        print(exc, file=sys.stderr)
        return 2
    print(format_bench_compare(result), end="")
    return 1 if result["regressions"] else 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "quickstart": _cmd_quickstart,
    "recipe": _cmd_recipe,
    "table": _cmd_table,
    "solvers": _cmd_solvers,
    "serve": _cmd_serve,
    "bench-serve": _cmd_bench_serve,
    "tail": _cmd_tail,
    "bench-compare": _cmd_bench_compare,
    "recipes": _cmd_recipes,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
