"""FFT backend dispatch: one home for every Fourier transform in the repo.

Every hot path in the package — the autodiff FFT ops, the fused training
op, the inference engine, the propagation-kernel builders — historically
called ``numpy.fft`` (or ``scipy.fft``) directly from its own module.
This module is now the *single* place an FFT implementation is chosen:

* at import, the best available implementation is resolved — ``scipy.fft``
  (pocketfft with a ``workers=`` thread knob, native single-precision
  transforms, ``overwrite_x=`` in-place support) when importable, else
  the ``numpy.fft`` fallback that every environment has;
* ``REPRO_BACKEND`` in the environment (``auto`` / ``scipy`` / ``numpy``)
  overrides the resolution, and :func:`set_backend` does the same
  programmatically (tests pin the fallback this way);
* the wrappers present one uniform signature regardless of backend: the
  numpy fallback silently absorbs ``workers=`` / ``overwrite_x=`` and
  preserves single-precision dtypes (older numpys promote complex64
  input to complex128; the wrapper casts back so the dtype policy holds
  on every backend).

The 2-D transforms accept an optional ``out=`` landing buffer so callers
with preallocated scratch can avoid keeping two result arrays alive.

Nothing in this module imports the rest of the package, so every layer
(optics, autodiff, runtime) can depend on it without cycles.
"""

from __future__ import annotations

import importlib
import os
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "available_backends",
    "backend_name",
    "set_backend",
    "set_workers",
    "get_workers",
    "fft",
    "ifft",
    "fft2",
    "ifft2",
    "fftfreq",
    "fftshift",
    "ifftshift",
]

_BACKEND_ENV = "REPRO_BACKEND"
_WORKERS_ENV = "REPRO_FFT_WORKERS"
_BACKENDS = ("scipy", "numpy")

#: The resolved implementation: ``("scipy", scipy.fft)`` or
#: ``("numpy", None)``.  Mutated only by :func:`set_backend`.
_IMPL: Tuple[str, Optional[object]] = ("numpy", None)

#: Default thread count forwarded to scipy transforms when the caller
#: passes ``workers=None`` (``None`` = the backend's own default, i.e.
#: single-threaded).
_WORKERS: Optional[int] = None


def _load_scipy_fft():
    """Import ``scipy.fft`` if the environment has it, else ``None``."""
    try:
        return importlib.import_module("scipy.fft")
    except Exception:  # ImportError, or a stubbed/broken scipy
        return None


def available_backends() -> Tuple[str, ...]:
    """Backend names importable right now (``numpy`` always is)."""
    names = []
    if _load_scipy_fft() is not None:
        names.append("scipy")
    names.append("numpy")
    return tuple(names)


def set_backend(name: Optional[str] = "auto") -> str:
    """Select the FFT implementation process-wide; returns the resolved name.

    ``"auto"`` (or ``None``) prefers scipy and falls back to numpy;
    ``"scipy"`` / ``"numpy"`` pin one explicitly.  Asking for scipy when
    it is not importable raises ``RuntimeError`` instead of silently
    degrading.
    """
    global _IMPL
    if name in (None, "", "auto"):
        module = _load_scipy_fft()
        _IMPL = ("scipy", module) if module is not None else ("numpy", None)
    elif name == "scipy":
        module = _load_scipy_fft()
        if module is None:
            raise RuntimeError(
                "FFT backend 'scipy' requested but scipy.fft is not "
                "importable; install scipy or use REPRO_BACKEND=numpy"
            )
        _IMPL = ("scipy", module)
    elif name == "numpy":
        _IMPL = ("numpy", None)
    else:
        raise ValueError(
            f"unknown FFT backend {name!r}; expected 'auto', "
            f"{' or '.join(repr(b) for b in _BACKENDS)}"
        )
    return _IMPL[0]


def backend_name() -> str:
    """Name of the active FFT implementation (``"scipy"`` or ``"numpy"``)."""
    return _IMPL[0]


def set_workers(workers: Optional[int]) -> None:
    """Set the default thread count for scipy transforms (None = 1).

    Only affects calls that pass ``workers=None``; explicit per-call
    values always win.  Ignored on the numpy fallback.
    """
    global _WORKERS
    if workers is not None:
        workers = int(workers)
        if workers == 0:
            raise ValueError("workers must be nonzero (negative counts "
                             "from the CPU total, scipy-style)")
    _WORKERS = workers


def get_workers() -> Optional[int]:
    """The process-wide default ``workers=`` value (None = backend default)."""
    return _WORKERS


def _resolve_workers(workers: Optional[int]) -> Optional[int]:
    return _WORKERS if workers is None else workers


def _match_dtype(result: np.ndarray, x) -> np.ndarray:
    """Keep single-precision inputs single on backends that promote.

    Modern numpy (>= 2.0) and scipy both run complex64/float32
    transforms natively; older numpys compute in double and return
    complex128.  The dtype policy must hold everywhere, so a promoted
    result is cast back down.
    """
    dtype = np.asarray(x).dtype
    if dtype in (np.complex64, np.float32) and result.dtype == np.complex128:
        return result.astype(np.complex64)
    return result


def _deliver(result: np.ndarray, out: Optional[np.ndarray]) -> np.ndarray:
    if out is None:
        return result
    np.copyto(out, result)
    return out


def fft(x, axis: int = -1, norm: Optional[str] = None,
        overwrite_x: bool = False, workers: Optional[int] = None):
    """1-D FFT along ``axis`` (uniform signature across backends)."""
    name, module = _IMPL
    if module is not None:
        return module.fft(x, axis=axis, norm=norm, overwrite_x=overwrite_x,
                          workers=_resolve_workers(workers))
    return _match_dtype(np.fft.fft(x, axis=axis, norm=norm), x)


def ifft(x, axis: int = -1, norm: Optional[str] = None,
         overwrite_x: bool = False, workers: Optional[int] = None):
    """1-D inverse FFT along ``axis``."""
    name, module = _IMPL
    if module is not None:
        return module.ifft(x, axis=axis, norm=norm, overwrite_x=overwrite_x,
                           workers=_resolve_workers(workers))
    return _match_dtype(np.fft.ifft(x, axis=axis, norm=norm), x)


def fft2(x, norm: Optional[str] = None, axes: Tuple[int, int] = (-2, -1),
         overwrite_x: bool = False, workers: Optional[int] = None,
         out: Optional[np.ndarray] = None):
    """2-D FFT over ``axes`` with an optional ``out=`` landing buffer."""
    name, module = _IMPL
    if module is not None:
        result = module.fft2(x, axes=axes, norm=norm,
                             overwrite_x=overwrite_x,
                             workers=_resolve_workers(workers))
    else:
        result = _match_dtype(np.fft.fft2(x, axes=axes, norm=norm), x)
    return _deliver(result, out)


def ifft2(x, norm: Optional[str] = None, axes: Tuple[int, int] = (-2, -1),
          overwrite_x: bool = False, workers: Optional[int] = None,
          out: Optional[np.ndarray] = None):
    """2-D inverse FFT over ``axes`` with an optional ``out=`` buffer."""
    name, module = _IMPL
    if module is not None:
        result = module.ifft2(x, axes=axes, norm=norm,
                              overwrite_x=overwrite_x,
                              workers=_resolve_workers(workers))
    else:
        result = _match_dtype(np.fft.ifft2(x, axes=axes, norm=norm), x)
    return _deliver(result, out)


def fftfreq(n: int, d: float = 1.0) -> np.ndarray:
    """Sample frequencies in the unshifted FFT bin ordering."""
    return np.fft.fftfreq(n, d=d)


def fftshift(x, axes=None) -> np.ndarray:
    """Move the zero-frequency bin to the center of the given axes."""
    return np.fft.fftshift(x, axes=axes)


def ifftshift(x, axes=None) -> np.ndarray:
    """Inverse of :func:`fftshift` (exact for odd lengths too)."""
    return np.fft.ifftshift(x, axes=axes)


def _init_from_env() -> None:
    """Resolve the backend and worker default from the environment.

    Called once at import; tests re-invoke it after monkeypatching
    ``REPRO_BACKEND`` / ``REPRO_FFT_WORKERS`` to exercise the override
    path without reloading the module.
    """
    set_backend(os.environ.get(_BACKEND_ENV) or "auto")
    raw = os.environ.get(_WORKERS_ENV)
    if raw:
        try:
            set_workers(int(raw))
        except ValueError as exc:
            raise ValueError(
                f"{_WORKERS_ENV}={raw!r} is not a valid worker count: "
                f"{exc} (use a nonzero integer, e.g. -1 for all cores, "
                "or unset the variable for the single-threaded default)"
            ) from exc
    else:
        set_workers(None)


_init_from_env()
