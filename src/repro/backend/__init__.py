"""Array/FFT backend layer: dispatch + dtype policy for the whole stack.

This package is the single place two process-wide decisions live:

* **which FFT implementation runs** — :mod:`repro.backend.dispatch`
  resolves ``scipy.fft`` (multi-worker threads, native single-precision
  transforms) with a ``numpy.fft`` fallback, overridable via
  ``REPRO_BACKEND`` or :func:`set_backend`;
* **which dtypes the stack computes in** — :mod:`repro.backend.precision`
  carries the complex64/complex128 :class:`Precision` policy (matched
  real dtypes + per-precision tolerance table), selectable via
  ``REPRO_PRECISION``, :func:`set_precision`, or a
  :class:`precision_scope` (``Trainer.fit(precision="single")``).

Every FFT call site in the package routes through here (grep-enforced:
no direct ``numpy.fft`` / ``scipy.fft`` use outside this package), so a
backend or precision switch reaches the autodiff ops, the fused
training op, the inference engine and the kernel builders at once.
See ``docs/performance.md`` ("Backends & precision").
"""

from .dispatch import (
    available_backends,
    backend_name,
    fft,
    fft2,
    fftfreq,
    fftshift,
    get_workers,
    ifft,
    ifft2,
    ifftshift,
    set_backend,
    set_workers,
)
from .precision import (
    PRECISIONS,
    Precision,
    get_precision,
    precision_scope,
    resolve_precision,
    set_precision,
)

__all__ = [
    "available_backends",
    "backend_name",
    "set_backend",
    "set_workers",
    "get_workers",
    "fft",
    "ifft",
    "fft2",
    "ifft2",
    "fftfreq",
    "fftshift",
    "ifftshift",
    "Precision",
    "PRECISIONS",
    "resolve_precision",
    "get_precision",
    "set_precision",
    "precision_scope",
]
