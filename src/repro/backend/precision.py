"""Process-wide numerical precision policy.

A :class:`Precision` bundles the complex/real dtype pair a computation
should run in with the tolerances that dtype can honestly promise:

* ``"double"`` — complex128/float64, the bit-exact reference mode every
  equivalence test is written against;
* ``"single"`` — complex64/float32, the fast mode: FFT memory traffic
  halves and pocketfft's single-precision kernels run ~2-3x faster.
  DONN training is noise-tolerant far beyond float32 rounding (the
  roughness-aware objective trains under explicit weight perturbation),
  so the relaxed tolerances below are all the mode costs.

The active policy is process-wide state, mirroring the fused-fast-path
flag: resolved from ``REPRO_PRECISION`` at import, switchable with
:func:`set_precision`, and scoped with :class:`precision_scope` (what
``Trainer.fit(precision=...)`` uses).  Consumers — the fused training
op, input encoding, the per-precision kernel cache — ask
:func:`get_precision` at call time, so one scope switches the whole
training stack.

Tolerance table
---------------
``forward_atol``   max |logit deviation| vs the complex128 reference
                   (test-enforced by the engine equivalence suite);
``grad_rtol``      fused-vs-composed gradient bound, relative to the
                   largest reference gradient entry;
``gradcheck_eps``  finite-difference step for :func:`repro.autodiff.gradcheck`
                   (float32 losses need a coarser probe: a 1e-6 step
                   drowns in ~6e-8 relative rounding noise);
``gradcheck_rtol`` / ``gradcheck_atol``  the matching gradcheck bounds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

__all__ = [
    "Precision",
    "PRECISIONS",
    "resolve_precision",
    "get_precision",
    "set_precision",
    "precision_scope",
]

_PRECISION_ENV = "REPRO_PRECISION"


@dataclass(frozen=True)
class Precision:
    """One dtype policy plus the tolerances it can promise."""

    name: str
    complex_dtype: np.dtype
    real_dtype: np.dtype
    forward_atol: float
    grad_rtol: float
    gradcheck_eps: float
    gradcheck_rtol: float
    gradcheck_atol: float

    @property
    def is_single(self) -> bool:
        return self.complex_dtype == np.dtype(np.complex64)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: The two supported policies (the engine's historical modes, now shared
#: by the whole stack).
PRECISIONS: Dict[str, Precision] = {
    "double": Precision(
        name="double",
        complex_dtype=np.dtype(np.complex128),
        real_dtype=np.dtype(np.float64),
        forward_atol=1e-10,
        grad_rtol=1e-8,
        gradcheck_eps=1e-6,
        gradcheck_rtol=1e-3,
        gradcheck_atol=1e-6,
    ),
    "single": Precision(
        name="single",
        complex_dtype=np.dtype(np.complex64),
        real_dtype=np.dtype(np.float32),
        forward_atol=1e-4,
        grad_rtol=2e-3,
        gradcheck_eps=1e-3,
        gradcheck_rtol=2e-2,
        # The absolute floor covers central-difference noise on a
        # float32-rounded loss: ~eps_f32 * |L| / (2 * gradcheck_eps).
        gradcheck_atol=2e-2,
    ),
}


def resolve_precision(
    precision: Union[str, Precision, None],
) -> Precision:
    """Normalize a precision spec to a :class:`Precision`.

    ``None`` means "whatever is currently active"; strings are looked up
    in :data:`PRECISIONS`; a :class:`Precision` passes through.
    """
    if precision is None:
        return get_precision()
    if isinstance(precision, Precision):
        return precision
    policy = PRECISIONS.get(precision)
    if policy is None:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of "
            f"{sorted(PRECISIONS)}"
        )
    return policy


_ACTIVE: Precision = PRECISIONS["double"]


def get_precision() -> Precision:
    """The active process-wide precision policy."""
    return _ACTIVE


def set_precision(precision: Union[str, Precision]) -> Precision:
    """Install a policy process-wide; returns the resolved object."""
    global _ACTIVE
    if precision is None:
        raise ValueError("set_precision needs an explicit policy; use "
                         "precision_scope(None) for a no-op scope")
    _ACTIVE = resolve_precision(precision)
    return _ACTIVE


class precision_scope:
    """Context manager installing a policy for the duration of a block.

    ``precision_scope(None)`` is a deliberate no-op (the ambient policy
    stays active), which lets callers thread an optional override
    without branching.  Usable as a decorator, mirroring ``no_grad``.
    """

    def __init__(self, precision: Union[str, Precision, None]) -> None:
        self._requested = precision

    def __enter__(self) -> "precision_scope":
        global _ACTIVE
        self._previous = _ACTIVE
        if self._requested is not None:
            _ACTIVE = resolve_precision(self._requested)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = self._previous

    def __call__(self, fn):
        def wrapper(*args, **kwargs):
            with precision_scope(self._requested):
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


def _init_from_env() -> None:
    """Install the ``REPRO_PRECISION`` policy (import-time; re-invoked by
    tests after monkeypatching the environment)."""
    raw = os.environ.get(_PRECISION_ENV)
    set_precision(raw if raw else "double")


_init_from_env()
