"""Sparsification methods and the SLR optimizer (Sec. III-C).

* :func:`block_sparsity_mask` — the paper's physics-aware pattern;
* :func:`unstructured_sparsity_mask`, :func:`bank_balanced_sparsity_mask`
  — the Fig. 3 baselines;
* :class:`SLRSparsifier` — Surrogate Lagrangian Relaxation training
  (Eq. 6-7) that drives weights toward a block-sparse solution.
"""

from .blocks import block_l2_norms, check_blocking, expand_block_mask
from .methods import (
    achieved_sparsity,
    bank_balanced_sparsity_mask,
    block_sparsity_mask,
    unstructured_sparsity_mask,
)
from .slr import SLRConfig, SLRResult, SLRSparsifier, slr_stepsize_alpha

__all__ = [
    "block_l2_norms",
    "check_blocking",
    "expand_block_mask",
    "achieved_sparsity",
    "block_sparsity_mask",
    "unstructured_sparsity_mask",
    "bank_balanced_sparsity_mask",
    "SLRConfig",
    "SLRResult",
    "SLRSparsifier",
    "slr_stepsize_alpha",
]
