"""Block partitioning utilities shared by the sparsification methods."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["check_blocking", "block_l2_norms", "expand_block_mask"]


def check_blocking(shape: Tuple[int, int], block_size: int) -> Tuple[int, int]:
    """Validate divisibility; return the ``(rows, cols)`` block grid shape."""
    if block_size < 1:
        raise ValueError(f"block size must be >= 1, got {block_size}")
    rows, cols = shape
    if rows % block_size or cols % block_size:
        raise ValueError(
            f"matrix shape {shape} is not divisible into "
            f"{block_size} x {block_size} blocks"
        )
    return rows // block_size, cols // block_size


def block_l2_norms(matrix: np.ndarray, block_size: int) -> np.ndarray:
    """Frobenius norm of every ``block_size``-square block.

    Returns a ``(rows/b, cols/b)`` grid; this is the saliency score block
    sparsification ranks blocks by (Sec. III-C1).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {matrix.shape}")
    br, bc = check_blocking(matrix.shape, block_size)
    blocks = matrix.reshape(br, block_size, bc, block_size)
    return np.sqrt((blocks ** 2).sum(axis=(1, 3)))


def expand_block_mask(block_mask: np.ndarray, block_size: int) -> np.ndarray:
    """Expand a ``(rows/b, cols/b)`` 0/1 block grid to pixel resolution."""
    block_mask = np.asarray(block_mask, dtype=np.float64)
    return np.kron(block_mask, np.ones((block_size, block_size)))
