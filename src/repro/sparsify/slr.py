"""Surrogate Lagrangian Relaxation (SLR) block sparsification (Sec. III-C2).

The constrained problem (Eq. 6) — minimize the roughness-regularized DONN
loss subject to a per-layer budget of non-zero blocks — is relaxed with
duplicate variables ``Z_i`` and multipliers ``Lambda_i`` into the augmented
Lagrangian of Eq. 7::

    L = l(W) + l_r(W) + sum_i g_i(Z_i)
        + sum_i tr(Lambda_i^T (W_i - Z_i))
        + sum_i rho/2 ||W_i - Z_i||_F^2

and solved by alternating two subproblems:

1. **W-subproblem** — gradient steps (Adam) on the DONN loss plus the
   coupling terms, with ``Z``, ``Lambda`` frozen;
2. **Z-subproblem** — exact projection ``Z_i = Pi(W_i + Lambda_i / rho)``
   onto the block-sparse feasible set (keep the largest-norm blocks).

After each subproblem the *surrogate optimality condition* (the new point
must strictly decrease the surrogate Lagrangian) gates the multiplier
update ``Lambda += s * (W - Z)`` whose stepsize follows Gurevin et al.::

    alpha_k = 1 - 1 / (M * k^(1 - 1/k^r)),
    s_k     = alpha_k * s_{k-1} * ||W^{k-1} - Z^{k-1}|| / ||W^k - Z^k||

with the paper's published constants rho=0.1, M=300, r=0.1, s0=0.01.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autodiff import Adam, Tensor
from ..autodiff import functional as F
from ..data.loaders import DataLoader
from .methods import block_sparsity_mask

__all__ = ["SLRConfig", "SLRResult", "SLRSparsifier", "slr_stepsize_alpha"]


def slr_stepsize_alpha(k: int, capital_m: float, r: float) -> float:
    """The SLR stepsize decay ``alpha_k = 1 - 1/(M k^(1 - 1/k^r))``."""
    if k < 1:
        raise ValueError(f"iteration index must be >= 1, got {k}")
    return 1.0 - 1.0 / (capital_m * k ** (1.0 - 1.0 / k ** r))


@dataclass(frozen=True)
class SLRConfig:
    """SLR hyperparameters (defaults = the paper's Sec. IV-A2 values)."""

    rho: float = 0.1
    capital_m: float = 300.0
    r: float = 0.1
    s0: float = 0.01
    sparsity_ratio: float = 0.1
    block_size: int = 5
    outer_iterations: int = 4
    inner_epochs: int = 1
    lr: float = 0.001
    finetune_epochs: int = 1

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise ValueError(f"rho must be positive, got {self.rho}")
        if not 0.0 <= self.sparsity_ratio < 1.0:
            raise ValueError(
                f"sparsity ratio must be in [0, 1), got {self.sparsity_ratio}"
            )
        if self.outer_iterations < 1:
            raise ValueError("need at least one outer iteration")


@dataclass
class SLRResult:
    """Outcome of an SLR run."""

    masks: List[np.ndarray]
    history: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def sparsity(self) -> float:
        total = sum(mask.size for mask in self.masks)
        zeros = sum(int((mask == 0).sum()) for mask in self.masks)
        return zeros / total


class SLRSparsifier:
    """Runs SLR block sparsification on a DONN.

    Parameters
    ----------
    model:
        The (typically pre-trained) :class:`repro.donn.DONN`.
    loader:
        Training data for the W-subproblem gradient steps.
    config:
        :class:`SLRConfig` hyperparameters.
    regularizers:
        Extra differentiable penalties (roughness / intra-block) included
        in ``l_r`` of Eq. 6-7.
    """

    def __init__(
        self,
        model,
        loader: DataLoader,
        config: SLRConfig = SLRConfig(),
        regularizers: Sequence = (),
    ) -> None:
        self.model = model
        self.loader = loader
        self.config = config
        self.regularizers = list(regularizers)
        self._probe: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Pieces of the Lagrangian
    # ------------------------------------------------------------------
    def _task_loss(self, images, labels) -> Tensor:
        logits = self.model(images)
        loss = F.mse_softmax_loss(
            logits, labels, num_classes=self.model.config.num_classes
        )
        for regularizer in self.regularizers:
            loss = loss + regularizer(self.model)
        return loss

    def _coupling_penalty(self, z: List[np.ndarray],
                          lam: List[np.ndarray]) -> Tensor:
        """``sum_i tr(Lambda^T (W-Z)) + rho/2 ||W-Z||^2`` (differentiable).

        ``W_i`` is the layer's *phase value* (the quantity the paper
        prunes; under the sigmoid parametrization it is a differentiable
        function of the raw weights).
        """
        rho = self.config.rho
        total = None
        for layer, z_i, lam_i in zip(self.model.layers, z, lam):
            w = layer.effective_phase()
            diff = w - Tensor(z_i)
            term = (Tensor(lam_i) * diff).sum() + (diff * diff).sum() * (rho / 2)
            total = term if total is None else total + term
        return total

    def _surrogate_value(self, z, lam) -> float:
        """Full Lagrangian on a fixed probe batch (the surrogate check)."""
        if self._probe is None:
            self._probe = next(iter(self.loader))
        images, labels = self._probe
        value = self._task_loss(images, labels) + self._coupling_penalty(z, lam)
        return float(value.item())

    def _project(self, matrix: np.ndarray) -> np.ndarray:
        """Closed-form Z-subproblem: keep the largest-L2-norm blocks."""
        mask = block_sparsity_mask(
            matrix, self.config.sparsity_ratio, self.config.block_size
        )
        return matrix * mask

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, verbose: bool = False) -> SLRResult:
        cfg = self.config
        phases = lambda: [layer.phase_array()  # noqa: E731
                          for layer in self.model.layers]

        z = [self._project(w) for w in phases()]
        lam = [np.zeros_like(w) for w in phases()]
        stepsize = cfg.s0
        previous_residual: Optional[float] = None
        history: Dict[str, List[float]] = {
            "residual": [], "stepsize": [], "surrogate": [],
        }

        optimizer = Adam([l.phase for l in self.model.layers], lr=cfg.lr)

        def residual_norm() -> float:
            return float(np.sqrt(sum(
                ((w - z_i) ** 2).sum() for w, z_i in zip(phases(), z)
            )))

        for k in range(1, cfg.outer_iterations + 1):
            surrogate_before = self._surrogate_value(z, lam)

            # --- W-subproblem: gradient descent on L(W, Z^k-1, Lambda^k).
            for _ in range(cfg.inner_epochs):
                for images, labels in self.loader:
                    optimizer.zero_grad()
                    loss = self._task_loss(images, labels)
                    loss = loss + self._coupling_penalty(z, lam)
                    loss.backward()
                    optimizer.step()

            # --- Surrogate optimality check + multiplier update.
            surrogate_after_w = self._surrogate_value(z, lam)
            current_residual = residual_norm()
            if surrogate_after_w < surrogate_before and current_residual > 0:
                alpha = slr_stepsize_alpha(k, cfg.capital_m, cfg.r)
                if previous_residual is not None:
                    stepsize = alpha * stepsize * (
                        previous_residual / current_residual
                    )
                for w, z_i, lam_i in zip(phases(), z, lam):
                    lam_i += stepsize * (w - z_i)
            previous_residual = max(current_residual, 1e-12)

            # --- Z-subproblem: exact projection.
            surrogate_before_z = self._surrogate_value(z, lam)
            z = [
                self._project(w + lam_i / cfg.rho)
                for w, lam_i in zip(phases(), lam)
            ]
            surrogate_after_z = self._surrogate_value(z, lam)
            current_residual = residual_norm()
            if surrogate_after_z < surrogate_before_z and current_residual > 0:
                alpha = slr_stepsize_alpha(k, cfg.capital_m, cfg.r)
                stepsize = alpha * stepsize * (
                    previous_residual / max(current_residual, 1e-12)
                )
                for w, z_i, lam_i in zip(phases(), z, lam):
                    lam_i += stepsize * (w - z_i)
            previous_residual = max(current_residual, 1e-12)

            history["residual"].append(current_residual)
            history["stepsize"].append(stepsize)
            history["surrogate"].append(surrogate_after_z)
            if verbose:
                print(f"SLR iter {k}: residual={current_residual:.4f} "
                      f"s={stepsize:.5f}")

        # --- Harden: masks from the final Z support, applied to the model.
        masks = [
            block_sparsity_mask(w + lam_i / cfg.rho,
                                cfg.sparsity_ratio, cfg.block_size)
            for w, lam_i in zip(phases(), lam)
        ]
        self.model.apply_sparsity_masks(masks)

        # --- Optional short masked fine-tune (mask gradients are frozen).
        if cfg.finetune_epochs:
            tuner = Adam([l.phase for l in self.model.layers], lr=cfg.lr)
            for _ in range(cfg.finetune_epochs):
                for images, labels in self.loader:
                    tuner.zero_grad()
                    self._task_loss(images, labels).backward()
                    tuner.step()

        return SLRResult(masks=masks, history=history)
