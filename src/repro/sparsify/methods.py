"""The three sparsification patterns compared in the paper's Fig. 3.

All functions return a binary **keep-mask** (1 = weight survives, 0 =
weight forced to zero) with the requested fraction of weights zeroed:

* :func:`block_sparsity_mask` — partition into equal square blocks, zero
  whole blocks with the smallest L2 norms (the paper's physics-aware
  choice: it clusters surviving pixels and leaves empty space between
  active regions, minimizing interpixel interaction);
* :func:`unstructured_sparsity_mask` — magnitude pruning [23];
* :func:`bank_balanced_sparsity_mask` — rows split into equal banks,
  identical sparsity enforced within every bank [26, 27].
"""

from __future__ import annotations

import numpy as np

from .blocks import block_l2_norms, check_blocking, expand_block_mask

__all__ = [
    "block_sparsity_mask",
    "unstructured_sparsity_mask",
    "bank_balanced_sparsity_mask",
    "achieved_sparsity",
]


def _check_ratio(ratio: float) -> float:
    if not 0.0 <= ratio < 1.0:
        raise ValueError(f"sparsity ratio must be in [0, 1), got {ratio}")
    return float(ratio)


def block_sparsity_mask(
    weights: np.ndarray, ratio: float, block_size: int
) -> np.ndarray:
    """Zero the ``ratio`` fraction of blocks with the smallest L2 norms.

    The number of zeroed blocks is ``floor(ratio * num_blocks)``; ties are
    broken by position (row-major), making the mask deterministic.
    """
    ratio = _check_ratio(ratio)
    weights = np.asarray(weights, dtype=np.float64)
    norms = block_l2_norms(weights, block_size)
    num_blocks = norms.size
    num_zero = int(ratio * num_blocks)
    block_mask = np.ones(num_blocks)
    if num_zero:
        order = np.argsort(norms.ravel(), kind="stable")
        block_mask[order[:num_zero]] = 0.0
    return expand_block_mask(block_mask.reshape(norms.shape), block_size)


def unstructured_sparsity_mask(weights: np.ndarray, ratio: float) -> np.ndarray:
    """Zero the ``ratio`` fraction of weights with smallest magnitudes."""
    ratio = _check_ratio(ratio)
    weights = np.asarray(weights, dtype=np.float64)
    num_zero = int(ratio * weights.size)
    mask = np.ones(weights.size)
    if num_zero:
        order = np.argsort(np.abs(weights).ravel(), kind="stable")
        mask[order[:num_zero]] = 0.0
    return mask.reshape(weights.shape)


def bank_balanced_sparsity_mask(
    weights: np.ndarray, ratio: float, bank_size: int
) -> np.ndarray:
    """Zero the smallest ``ratio`` fraction *within each row bank*.

    Every row is split into contiguous banks of ``bank_size`` columns and
    ``floor(ratio * bank_size)`` weights are zeroed per bank, giving the
    regular distribution bank-balanced sparsity targets.
    """
    ratio = _check_ratio(ratio)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {weights.shape}")
    rows, cols = weights.shape
    if cols % bank_size:
        raise ValueError(
            f"row length {cols} is not divisible into banks of {bank_size}"
        )
    per_bank_zero = int(ratio * bank_size)
    mask = np.ones_like(weights)
    if per_bank_zero:
        banks = np.abs(weights).reshape(rows, cols // bank_size, bank_size)
        order = np.argsort(banks, axis=-1, kind="stable")
        kill = order[..., :per_bank_zero]
        bank_mask = np.ones_like(banks)
        np.put_along_axis(bank_mask, kill, 0.0, axis=-1)
        mask = bank_mask.reshape(rows, cols)
    return mask


def achieved_sparsity(mask: np.ndarray) -> float:
    """Fraction of zeroed entries in a keep-mask."""
    mask = np.asarray(mask)
    return float(1.0 - mask.sum() / mask.size)
