"""Process-wide cache of free-space propagation transfer functions.

Every :class:`~repro.optics.propagation.Propagator` — and there are
``L + 1`` of them in an ``L``-layer DONN (one per diffractive layer plus
the detector hop) — historically rebuilt an identical angular-spectrum
transfer function ``H`` on the padded grid.  ``H`` depends only on the
sampling geometry, the hop and the compute dtype, so this module
memoizes it process-wide under the key::

    (n, pixel_pitch, wavelength, distance, method, pad_factor,
     band_limit, dtype)

where ``n`` is the *unpadded* mask resolution.  A 3-layer DONN therefore
computes exactly one kernel; so does every :class:`InferenceEngine`,
exhaustive sweep, or deployment simulation that shares the geometry.

Kernels are materialized **per precision**: the canonical complex128
kernel is computed from the physics once, and a complex64 variant (for
``precision="single"`` engines and single-precision training) is a
one-time downcast cached under its own key — single-precision consumers
share one complex64 array instead of each downcasting a complex128
kernel per engine build (:func:`kernel_for_dtype`).

Cached arrays are returned with ``writeable=False`` so that accidental
in-place mutation by one consumer cannot corrupt every other holder of
the shared kernel.  The cache is bounded (LRU) and thread-safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..optics.grid import SimulationGrid

__all__ = [
    "KernelKey",
    "PropagationKernel",
    "get_kernel",
    "get_transfer_function",
    "kernel_for_dtype",
    "cache_info",
    "clear_kernel_cache",
    "set_cache_limit",
]

_METHODS = ("angular_spectrum", "fresnel")

#: Geometry-plus-dtype key uniquely identifying one transfer function.
KernelKey = Tuple[int, float, float, float, str, int, bool, str]

#: The canonical dtype the physics is computed in; other precisions are
#: one-time downcasts of this kernel.
_CANONICAL_DTYPE = np.dtype(np.complex128)

_lock = threading.RLock()
_cache: "OrderedDict[KernelKey, PropagationKernel]" = OrderedDict()
_hits = 0
_misses = 0
_max_entries = 64


@dataclass(frozen=True)
class PropagationKernel:
    """A precomputed, shareable padded-grid transfer function.

    Attributes
    ----------
    key:
        The geometry-plus-dtype tuple the kernel was built under.
    h:
        Transfer function on the padded grid at the key's dtype
        (read-only).
    pad:
        Pixels of zero-padding per side; the padded side length is
        ``n + 2 * pad``.
    grid:
        The *unpadded* simulation grid.
    """

    key: KernelKey
    h: np.ndarray
    pad: int
    grid: SimulationGrid

    @property
    def padded_n(self) -> int:
        return self.h.shape[-1]

    @property
    def dtype(self) -> np.dtype:
        """Complex dtype this kernel was materialized at."""
        return self.h.dtype

    def prescaled(self) -> np.ndarray:
        """``H / padded_n**2`` (read-only), computed once per kernel.

        Folding the two per-hop ortho scalings into the kernel lets
        consumers run unscaled DFT passes:
        ``ifft_u(fft_u(x) * H/side^2) == ifft_ortho(fft_ortho(x) * H)``
        exactly.  Shared by the inference engine's hot loop and the
        fused training op, so the folding convention has one home.
        """
        cached = getattr(self, "_prescaled", None)
        if cached is None:
            scale = 1.0 / float(self.padded_n) ** 2
            cached = np.asarray(self.h * scale)
            cached.flags.writeable = False
            object.__setattr__(self, "_prescaled", cached)
        return cached

    def prescaled_conj(self) -> np.ndarray:
        """``conj(H) / padded_n**2`` (read-only) — the propagation
        adjoint's kernel, used by the fused op's backward pass."""
        cached = getattr(self, "_prescaled_conj", None)
        if cached is None:
            cached = np.conj(self.prescaled())
            cached.flags.writeable = False
            object.__setattr__(self, "_prescaled_conj", cached)
        return cached


def make_key(
    grid: SimulationGrid,
    distance: float,
    method: str = "angular_spectrum",
    pad_factor: int = 2,
    band_limit: bool = True,
    dtype=np.complex128,
) -> KernelKey:
    """Normalize geometry parameters into the canonical cache key."""
    if method not in _METHODS:
        raise ValueError(
            f"unknown propagation method {method!r}; expected one of "
            f"{_METHODS}"
        )
    if pad_factor < 1:
        raise ValueError(f"pad_factor must be >= 1, got {pad_factor}")
    dtype = np.dtype(dtype)
    if dtype.kind != "c":
        raise ValueError(
            f"kernel dtype must be complex, got {dtype}"
        )
    return (
        int(grid.n),
        float(grid.pixel_pitch),
        float(grid.wavelength),
        float(distance),
        method,
        int(pad_factor),
        bool(band_limit),
        dtype.name,
    )


def _pad_pixels(n: int, pad_factor: int) -> int:
    # Symmetric padding: round the requested enlargement up so the padded
    # side is n + 2*pad even when (pad_factor - 1) * n is odd.
    return ((pad_factor - 1) * n + 1) // 2


def _compute(key: KernelKey) -> PropagationKernel:
    from ..optics import propagation  # local import: optics <-> runtime

    (n, pitch, wavelength, distance, method, pad_factor, band_limit,
     dtype_name) = key
    grid = SimulationGrid(n=n, pixel_pitch=pitch, wavelength=wavelength)
    if np.dtype(dtype_name) != _CANONICAL_DTYPE:
        # Non-canonical precisions are one-time downcasts of the shared
        # complex128 kernel (computed or fetched through the cache), so
        # the physics is evaluated exactly once per geometry.
        base = get_kernel(grid, distance, method=method,
                          pad_factor=pad_factor, band_limit=band_limit)
        h = base.h.astype(dtype_name)
        h.flags.writeable = False
        return PropagationKernel(key=key, h=h, pad=base.pad, grid=base.grid)
    pad = _pad_pixels(n, pad_factor)
    padded_grid = SimulationGrid(
        n=n + 2 * pad, pixel_pitch=pitch, wavelength=wavelength
    )
    if method == "angular_spectrum":
        h = propagation.angular_spectrum_tf(padded_grid, distance, band_limit)
    else:
        h = propagation.fresnel_tf(padded_grid, distance)
    h.flags.writeable = False
    return PropagationKernel(key=key, h=h, pad=pad, grid=grid)


def get_kernel(
    grid: SimulationGrid,
    distance: float,
    method: str = "angular_spectrum",
    pad_factor: int = 2,
    band_limit: bool = True,
    dtype=np.complex128,
) -> PropagationKernel:
    """Fetch (or compute once) the shared kernel for a geometry/dtype."""
    global _hits, _misses
    key = make_key(grid, distance, method, pad_factor, band_limit, dtype)
    with _lock:
        kernel = _cache.get(key)
        if kernel is not None:
            _hits += 1
            _cache.move_to_end(key)
            return kernel
        _misses += 1
    # Compute outside the lock: kernels are large and pure functions of
    # the key, so a rare duplicate computation beats serializing all
    # builders behind one global lock.
    kernel = _compute(key)
    with _lock:
        existing = _cache.get(key)
        if existing is not None:
            return existing
        _cache[key] = kernel
        while len(_cache) > _max_entries:
            _cache.popitem(last=False)
    return kernel


def get_transfer_function(
    grid: SimulationGrid,
    distance: float,
    method: str = "angular_spectrum",
    pad_factor: int = 2,
    band_limit: bool = True,
) -> np.ndarray:
    """The shared (read-only) padded-grid ``H`` for a geometry."""
    return get_kernel(grid, distance, method, pad_factor, band_limit).h


def kernel_for_dtype(kernel: PropagationKernel, dtype) -> PropagationKernel:
    """The same physical kernel materialized at ``dtype``.

    Returns ``kernel`` itself when the dtype already matches; otherwise
    fetches (or downcasts once) the per-precision variant through the
    cache, so e.g. every ``precision="single"`` engine shares one
    complex64 array.
    """
    dtype = np.dtype(dtype)
    if kernel.dtype == dtype:
        return kernel
    distance, method, pad_factor, band_limit = kernel.key[3:7]
    return get_kernel(
        kernel.grid, distance, method=method, pad_factor=pad_factor,
        band_limit=band_limit, dtype=dtype,
    )


def cache_info() -> Dict[str, int]:
    """Hit/miss counters and current size (for tests and monitoring)."""
    with _lock:
        return {
            "hits": _hits,
            "misses": _misses,
            "size": len(_cache),
            "max_entries": _max_entries,
        }


def clear_kernel_cache() -> None:
    """Drop every cached kernel and reset the counters."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def set_cache_limit(max_entries: int) -> None:
    """Bound the number of resident kernels (evicts LRU beyond it)."""
    global _max_entries
    if max_entries < 1:
        raise ValueError(f"cache limit must be >= 1, got {max_entries}")
    with _lock:
        _max_entries = int(max_entries)
        while len(_cache) > _max_entries:
            _cache.popitem(last=False)
