"""Reusable scratch buffers for the compiled inference fast path.

The autodiff forward allocates a fresh padded array per layer per call
(``pad2d`` + crop).  At serving rates those allocations dominate small
batches, so the engine instead keeps one padded complex scratch buffer
per (shape, dtype) and re-fills its interior view every chunk — pad and
crop become views into the same storage instead of copies.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

import numpy as np

__all__ = ["ScratchBuffers"]


class ScratchBuffers:
    """A tiny keyed pool of preallocated arrays.

    Buffers are keyed by ``(name, shape, dtype)`` and grown on demand: a
    request for a smaller leading (batch) dimension returns a view into
    the largest buffer allocated so far, so the final short chunk of a
    stream reuses the full-size buffer instead of allocating.

    Storage is per-thread (``threading.local``), which makes a pool
    shared across engines — e.g. a model's pool — safe under concurrent
    inference, and lets a dead thread's buffers be garbage-collected
    instead of stranding them in the pool.  ``nbytes``/``clear``
    therefore see the *calling thread's* buffers.

    Pools pickle/deepcopy as empty (scratch contents are pure caches).
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def __getstate__(self):
        # threading.local (and the scratch contents) don't travel;
        # return a truthy placeholder so __setstate__ runs.
        return {"scratch": None}

    def __setstate__(self, state) -> None:
        self.__init__()

    def _store(self) -> Dict[tuple, np.ndarray]:
        store = getattr(self._local, "buffers", None)
        if store is None:
            store = {}
            self._local.buffers = store
        return store

    def zeros(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A zero-filled reusable buffer of exactly ``shape``.

        The buffer's contents are *not* preserved across calls — it is
        re-zeroed here (cheap memset) so callers can rely on a clean pad
        border.
        """
        buf = self._get(name, shape, dtype)
        buf.fill(0)
        return buf

    def empty(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        """A reusable buffer of ``shape`` with arbitrary contents."""
        return self._get(name, shape, dtype)

    def _get(self, name: str, shape: Tuple[int, ...], dtype) -> np.ndarray:
        dtype = np.dtype(dtype)
        shape = tuple(int(s) for s in shape)
        key = (name, shape[1:], dtype)
        store = self._store()
        full = store.get(key)
        if full is None or full.shape[0] < shape[0]:
            full = np.empty(shape, dtype=dtype)
            store[key] = full
        return full[: shape[0]]

    def nbytes(self) -> int:
        """Total bytes held for the calling thread."""
        return sum(buf.nbytes for buf in self._store().values())

    def clear(self) -> None:
        """Release the calling thread's buffers."""
        self._store().clear()
