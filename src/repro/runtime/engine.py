"""Compiled inference fast path for trained DONNs.

:class:`InferenceEngine` flattens a :class:`~repro.donn.model.DONN` into a
pure-NumPy pipeline for gradient-free serving.  Relative to running
``model.forward`` under ``no_grad`` it removes every per-call source of
overhead:

* **no autodiff graph** — no Tensor wrapping, no vjp closures;
* **shared propagation kernels** — every hop's transfer function comes
  from the process-wide :mod:`~repro.runtime.kernel_cache`, so the
  ``L + 1`` hops of an ``L``-layer stack share one precomputed ``H``;
* **fused pad/modulate/crop** — the field lives on the padded grid for
  the whole stack; each layer's phase mask is embedded in a padded
  complex array (zeros outside the aperture), so the autodiff path's
  ``crop -> modulate -> pad`` becomes a single in-place multiply;
* **preallocated scratch buffers** — reused across batches and chunks;
* **optional single precision** (``precision="single"``), roughly
  halving FFT memory bandwidth at ~1e-4 logit accuracy;
* **batched, chunked execution** — a ``max_batch`` chunker streams
  arbitrarily large workloads at bounded memory.

The engine snapshots the model's modulations at construction time; build
a fresh engine (or call :meth:`refresh`) after the phases change.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..backend import PRECISIONS
from ..backend import dispatch as _fft
from .buffers import ScratchBuffers
from .kernel_cache import PropagationKernel, get_kernel, kernel_for_dtype

__all__ = ["InferenceEngine"]


class InferenceEngine:
    """Graph-free batched forward pass of a trained DONN.

    Parameters
    ----------
    model:
        The :class:`~repro.donn.model.DONN` to compile.  Geometry,
        detector layout and (by default) the current phase masks are
        snapshotted; training the model afterwards does not affect an
        already-built engine.
    modulations:
        Optional per-layer complex transmissions overriding the model's
        own ``exp(i phi)`` — the deployment simulator passes its
        crosstalk-degraded masks here.
    precision:
        ``"double"`` (complex128, bit-compatible with the autodiff
        forward) or ``"single"`` (complex64 fast path).
    max_batch:
        Largest number of samples propagated at once; bigger inputs are
        streamed in chunks of this size.  The default (64) saturates
        single-core FFT throughput while bounding scratch memory at
        ``64 * padded_n^2`` complex elements.
    workers:
        Forwarded to the :mod:`repro.backend` FFT wrappers (None = the
        backend's process-wide default; ignored on the numpy fallback).
    buffers:
        Optional shared :class:`ScratchBuffers` pool (so many short-lived
        engines over one model reuse the same scratch memory).
    source_modes:
        Optional ``(modes, n, n)`` complex screens modeling a *partially
        spatially coherent* source by mode decomposition (Filipovich et
        al. 2023): the input field is propagated once per screen and the
        mutually incoherent modes add in *intensity* (averaged over
        modes).  ``None`` (default) is the fully coherent forward; a
        single uniform screen reproduces it exactly (test-enforced).
        Screens come from
        :meth:`repro.physics.CoherenceSpec.screens`.
    """

    def __init__(
        self,
        model,
        modulations: Optional[Sequence[np.ndarray]] = None,
        precision: str = "double",
        max_batch: int = 64,
        workers: Optional[int] = None,
        buffers: Optional[ScratchBuffers] = None,
        source_modes: Optional[np.ndarray] = None,
    ) -> None:
        if precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of "
                f"{sorted(PRECISIONS)}"
            )
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        policy = PRECISIONS[precision]
        self.model = model
        self.precision = precision
        self.max_batch = int(max_batch)
        self.workers = workers
        self._cdtype = policy.complex_dtype
        self._rdtype = policy.real_dtype
        self._buffers = buffers if buffers is not None else ScratchBuffers()

        self.n = int(model.config.n)
        #: One shared kernel per hop (L layer hops + the detector hop),
        #: materialized at the engine's precision through the cache — a
        #: ``"single"`` engine shares one complex64 kernel per geometry
        #: instead of downcasting a complex128 array per build.
        self._kernels: List[PropagationKernel] = [
            kernel_for_dtype(self._hop_kernel(layer.propagator),
                             self._cdtype)
            for layer in model.layers
        ]
        self._kernels.append(
            kernel_for_dtype(self._hop_kernel(model.to_detector),
                             self._cdtype)
        )
        pads = {k.pad for k in self._kernels}
        sides = {k.padded_n for k in self._kernels}
        if len(pads) != 1 or len(sides) != 1:
            raise ValueError(
                "InferenceEngine requires a uniform padded grid across "
                f"hops, got pads={sorted(pads)} sides={sorted(sides)}"
            )
        self._pad = pads.pop()
        self._padded_n = sides.pop()
        # The per-hop ortho scaling is folded into the shared kernel
        # (``PropagationKernel.prescaled``), so the hot loop runs
        # unscaled DFT passes; the prescaled array is shared as-is with
        # every other same-precision engine and the fused training op
        # (no copy in either precision).
        self._hs = [kernel.prescaled() for kernel in self._kernels]

        detector = model.detector
        if detector.layout.n != self.n:
            raise ValueError(
                f"detector layout n={detector.layout.n} does not match "
                f"grid n={self.n}"
            )
        self._normalize = detector.normalize
        self._gain = detector.gain
        self._readout = np.ascontiguousarray(
            detector._readout_matrix.data, dtype=self._rdtype
        )
        # Differential heads carry an explicit total-capture vector
        # (signed logits do not sum to the captured intensity); the
        # standard head leaves it None and keeps the logit-sum path.
        total = getattr(detector, "_total_vector", None)
        self._total = (None if total is None else
                       np.ascontiguousarray(total.data, dtype=self._rdtype))
        self.num_classes = detector.num_classes

        if source_modes is None:
            self._source_modes: Optional[np.ndarray] = None
        else:
            modes = np.asarray(source_modes)
            if modes.ndim == 2:
                modes = modes[None]
            if modes.ndim != 3 or modes.shape[-2:] != (self.n, self.n):
                raise ValueError(
                    f"source_modes shape {np.shape(source_modes)} does "
                    f"not match (modes, {self.n}, {self.n})"
                )
            if modes.shape[0] < 1:
                raise ValueError("source_modes needs at least one mode")
            self._source_modes = np.ascontiguousarray(
                modes, dtype=self._cdtype
            )

        self._modulation_rows: List[np.ndarray] = []
        self.refresh(modulations)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @staticmethod
    def _hop_kernel(propagator) -> PropagationKernel:
        kernel = getattr(propagator, "kernel", None)
        if isinstance(kernel, PropagationKernel):
            return kernel
        return get_kernel(
            propagator.grid,
            propagator.distance,
            method=propagator.method,
            pad_factor=propagator.pad_factor,
            band_limit=getattr(propagator, "band_limit", True),
        )

    def refresh(
        self, modulations: Optional[Sequence[np.ndarray]] = None
    ) -> "InferenceEngine":
        """Re-snapshot the layer modulations (e.g. after more training).

        Cheap by design: when the engine already holds its padded
        modulation planes (always, after construction) the new values
        are written into them in place — kernels, scratch buffers and
        the readout matrix are untouched, so per-epoch evaluation during
        training does not rebuild anything.  Returns ``self`` so it
        chains: ``engine.refresh().predict(x)``.
        """
        if modulations is None:
            modulations = self.model.modulations()
        if len(modulations) != len(self.model.layers):
            raise ValueError(
                f"got {len(modulations)} modulations for "
                f"{len(self.model.layers)} layers"
            )
        n, pad, side = self.n, self._pad, self._padded_n
        checked = []
        for index, modulation in enumerate(modulations):
            modulation = np.asarray(modulation)
            if modulation.shape != (n, n):
                raise ValueError(
                    f"modulation {index} has shape {modulation.shape}, "
                    f"expected ({n}, {n})"
                )
            checked.append(modulation)
        # All inputs validated: from here the update cannot fail, so a
        # rejected refresh never leaves the engine half-updated.
        reuse = len(self._modulation_rows) == len(checked)
        padded = self._modulation_rows if reuse else []
        for index, modulation in enumerate(checked):
            # Only the interior rows of the padded plane are ever
            # touched (see ``_propagate_chunk``); zeros outside the
            # aperture columns fuse the autodiff path's
            # crop -> modulate -> re-pad into one in-place multiply.
            if reuse:
                padded[index][:, pad:pad + n] = modulation
            else:
                rows = np.zeros((n, side), dtype=self._cdtype)
                rows[:, pad:pad + n] = modulation
                padded.append(rows)
        self._modulation_rows = padded
        return self

    # ------------------------------------------------------------------
    # Input handling
    # ------------------------------------------------------------------
    def _as_fields(self, inputs) -> tuple:
        """Return ``(fields (batch, n, n) complex, was_unbatched)``."""
        data = getattr(inputs, "data", inputs)  # accept stray Tensors
        data = np.asarray(data)
        if np.iscomplexobj(data):
            unbatched = data.ndim == 2
            fields = data[None] if unbatched else data
            if fields.ndim != 3 or fields.shape[-2:] != (self.n, self.n):
                raise ValueError(
                    f"field shape {data.shape} does not match grid "
                    f"n={self.n}"
                )
            return fields, unbatched
        from ..donn.encoding import encode_amplitude

        # Raw images always come back batched from the encoder (matching
        # the autodiff path, which never squeezes encoded inputs).
        return encode_amplitude(data, self.n, dtype=self._cdtype), False

    # ------------------------------------------------------------------
    # Hot loop
    # ------------------------------------------------------------------
    def _propagate_chunk(self, fields: np.ndarray) -> np.ndarray:
        """Run one chunk through the stack; returns the *cropped*
        detector field ``(batch, n, n)`` (scratch, valid until the next
        chunk).

        Every hop's input field is exactly zero outside the interior
        rows (the pad border is never written; the padded modulation
        zeroes everything it touches outside the aperture), so each 2-D
        transform is split into per-axis passes and the pass over the
        row axis only visits the ``n`` interior rows — at ``pad_factor
        2`` that skips a quarter of all FFT work with bit-identical
        results.  Transforms run unscaled; the ortho normalization lives
        in the prescaled kernels (see ``__init__``).

        The single-hop form of this pass also lives in
        ``repro.autodiff.fused._propagate_padded`` (the training fast
        path); a change to the pruning trick or the normalization
        convention must be mirrored there.
        """
        batch = fields.shape[0]
        n, pad, side = self.n, self._pad, self._padded_n
        workers = self.workers
        rows = slice(pad, pad + n)
        work = self._buffers.zeros(
            "field", (batch, side, side), self._cdtype
        )
        work[:, rows, pad:pad + n] = fields
        last = len(self._hs) - 1
        inner = None
        for hop, h in enumerate(self._hs):
            # Forward: transform the nonzero rows, then the full columns
            # (the zero border rows transform to zero for free).
            work[:, rows, :] = _fft.fft(
                work[:, rows, :], axis=-1, workers=workers
            )
            spectrum = _fft.fft(work, axis=-2, workers=workers)
            np.multiply(spectrum, h, out=spectrum)
            # Inverse: full column pass, then only the interior rows —
            # everything outside them is about to be cropped or zeroed
            # by the next modulation anyway.
            tall = _fft.ifft(
                spectrum, axis=-2, norm="forward", overwrite_x=True,
                workers=workers,
            )
            inner = _fft.ifft(
                tall[:, rows, :], axis=-1, norm="forward",
                overwrite_x=True, workers=workers,
            )
            if hop < last:
                # The modulation rows are zero outside the aperture
                # columns, restoring the sparsity invariant in work.
                np.multiply(inner, self._modulation_rows[hop], out=inner)
                work[:, rows, :] = inner
        return inner[:, :, pad:pad + n]

    def _intensity_chunk(self, fields: np.ndarray) -> np.ndarray:
        """Detector-plane intensity ``(batch, n, n)`` for one chunk.

        With ``source_modes`` set, each mutually incoherent screen is
        propagated separately and the intensities average (the mode
        decomposition of a partially coherent source); the accumulation
        lives outside the propagation scratch, so the per-mode reuse of
        ``_propagate_chunk``'s buffers is safe.
        """
        if self._source_modes is None:
            crop = self._propagate_chunk(fields)
            intensity = np.square(crop.real)
            intensity += np.square(crop.imag)
            return intensity
        intensity = np.zeros(fields.shape, dtype=self._rdtype)
        for screen in self._source_modes:
            crop = self._propagate_chunk(fields * screen)
            intensity += np.square(crop.real)
            intensity += np.square(crop.imag)
        intensity /= len(self._source_modes)
        return intensity

    def _logits_chunk(self, fields: np.ndarray) -> np.ndarray:
        intensity = self._intensity_chunk(fields)
        batch = intensity.shape[0]
        flat = intensity.reshape(batch, self.n * self.n)
        logits = flat @ self._readout
        if self._normalize:
            if self._total is None:
                total = logits.sum(axis=-1, keepdims=True)
            else:
                total = flat @ self._total
            logits = logits / (total + 1e-20) * self._gain
        return logits

    def _run_chunked(self, fields: np.ndarray, chunk_fn, out_shape,
                     out_dtype) -> np.ndarray:
        batch = fields.shape[0]
        out = np.empty((batch,) + out_shape, dtype=out_dtype)
        for start in range(0, batch, self.max_batch):
            stop = min(start + self.max_batch, batch)
            out[start:stop] = chunk_fn(fields[start:stop])
        return out

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def logits(self, inputs) -> np.ndarray:
        """Class logits ``(batch, num_classes)`` (unbatched in -> 1-D out)."""
        fields, unbatched = self._as_fields(inputs)
        logits = self._run_chunked(
            fields, self._logits_chunk, (self.num_classes,), self._rdtype
        )
        return logits[0] if unbatched else logits

    def predict(self, inputs) -> np.ndarray:
        """Predicted class labels (argmax of detector sums)."""
        fields, _ = self._as_fields(inputs)
        labels = np.empty(fields.shape[0], dtype=np.int64)
        for start in range(0, fields.shape[0], self.max_batch):
            stop = min(start + self.max_batch, fields.shape[0])
            chunk_logits = self._logits_chunk(fields[start:stop])
            labels[start:stop] = np.argmax(chunk_logits, axis=-1)
        return labels

    def intensity_map(self, inputs) -> np.ndarray:
        """Detector-plane intensity pattern(s), for visualization."""
        fields, unbatched = self._as_fields(inputs)
        intensity = self._run_chunked(
            fields, self._intensity_chunk, (self.n, self.n), self._rdtype
        )
        return intensity[0] if unbatched else intensity

    def __call__(self, inputs) -> np.ndarray:
        return self.logits(inputs)

    def __repr__(self) -> str:
        return (
            f"InferenceEngine(layers={len(self._modulation_rows)}, "
            f"n={self.n}, padded_n={self._padded_n}, "
            f"precision={self.precision!r}, max_batch={self.max_batch})"
        )
