"""Compiled inference runtime: shared kernels + graph-free serving.

The training stack runs through :mod:`repro.autodiff`; this package is
the read-only fast path.  :mod:`~repro.runtime.kernel_cache` memoizes
angular-spectrum / Fresnel transfer functions process-wide (one ``H``
per unique geometry, shared by every :class:`~repro.optics.Propagator`
and engine), and :class:`InferenceEngine` flattens a trained DONN into a
batched, buffer-reusing NumPy pipeline with an optional single-precision
mode.  See ``docs/performance.md``.
"""

from .buffers import ScratchBuffers
from .engine import InferenceEngine
from .kernel_cache import (
    KernelKey,
    PropagationKernel,
    cache_info,
    clear_kernel_cache,
    get_kernel,
    get_transfer_function,
    kernel_for_dtype,
    set_cache_limit,
)

__all__ = [
    "InferenceEngine",
    "ScratchBuffers",
    "KernelKey",
    "PropagationKernel",
    "get_kernel",
    "get_transfer_function",
    "kernel_for_dtype",
    "cache_info",
    "clear_kernel_cache",
    "set_cache_limit",
]
