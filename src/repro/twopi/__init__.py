"""2-pi periodic phase optimization (Sec. III-D2).

* :func:`gumbel_softmax` — the differentiable discrete-selection estimator;
* :class:`TwoPiOptimizer` — Gumbel-Softmax smoothing of trained masks;
* :func:`greedy_offsets` / :func:`brute_force_offsets` — classical
  baselines and exact ground truth for validation.
"""

from .exhaustive import brute_force_offsets, greedy_offsets, roughness_batch
from .gumbel import gumbel_softmax
from .optimizer import (
    TwoPiConfig,
    TwoPiOptimizer,
    TwoPiSolution,
    forward_invariance_gap,
)

__all__ = [
    "gumbel_softmax",
    "brute_force_offsets",
    "greedy_offsets",
    "roughness_batch",
    "TwoPiConfig",
    "TwoPiOptimizer",
    "TwoPiSolution",
    "forward_invariance_gap",
]
