"""The 2-pi periodic phase optimization (paper Sec. III-D2).

Phase modulation is 2-pi periodic — ``f(c + 2 pi) = f(c)`` for the DONN
forward function — so a trained mask's *fabricated topography* can be
smoothed, without any retraining or accuracy change, by selectively adding
2 pi to individual pixels.  The paper formulates the per-pixel {0, 2 pi}
choice as combinatorial optimization over an ``n x n x 2`` one-hot
selection mask whose matrix product with ``[[0], [2 pi]]`` yields the
add-on phase, and solves it with Gumbel-Softmax + gradient descent on the
roughness of the offset mask.

This implementation anneals the softmax temperature geometrically, takes
the argmax selection at the end, and (optionally) polishes it with greedy
coordinate descent; the returned solution is never worse than the
unmodified mask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..autodiff import Adam, Parameter, Tensor
from ..autodiff import ops
from ..autodiff.rng import spawn_rng
from ..optics.constants import TWO_PI
from ..optics.fabrication import wrap_phase
from ..roughness.metrics import roughness, roughness_tensor
from .exhaustive import greedy_offsets
from .gumbel import gumbel_softmax

__all__ = ["TwoPiConfig", "TwoPiSolution", "TwoPiOptimizer",
           "forward_invariance_gap"]


def forward_invariance_gap(
    model,
    solutions: List["TwoPiSolution"],
    inputs: np.ndarray,
    precision: str = "double",
    max_batch: int = 64,
) -> float:
    """Max-abs logit deviation introduced by the 2-pi add-on masks.

    The 2-pi step is supposed to be forward-invariant —
    ``exp(i (phi + 2 pi s)) == exp(i phi)`` — so this should be at
    floating-point noise (~1e-15 in double precision).  Both sides run
    through the compiled :class:`~repro.runtime.InferenceEngine` (one
    shared kernel, no autodiff graph), so verifying a smoothing result
    over a whole test set is cheap.
    """
    if len(solutions) != len(model.layers):
        raise ValueError(
            f"got {len(solutions)} solutions for {len(model.layers)} layers"
        )
    phases = model.phases(wrapped=True)
    lifted = [
        np.exp(1j * (phase + solution.offsets))
        for phase, solution in zip(phases, solutions)
    ]
    baseline = model.inference_engine(
        precision=precision, max_batch=max_batch
    )
    smoothed = model.inference_engine(
        modulations=lifted, precision=precision, max_batch=max_batch
    )
    gap = np.abs(baseline.logits(inputs) - smoothed.logits(inputs))
    return float(gap.max())


@dataclass(frozen=True)
class TwoPiConfig:
    """Hyperparameters of the Gumbel-Softmax 2-pi solver."""

    iterations: int = 300
    lr: float = 0.3
    tau_start: float = 3.0
    tau_end: float = 0.3
    k: int = 8
    seed: int = 0
    hard: bool = False
    polish: bool = True  # greedy coordinate-descent refinement
    #: Block grid of the sparsification pattern, if any.  Enables whole-
    #: block flip moves during polishing — single-pixel moves cannot lift
    #: a zeroed block past its local-minimum barrier.
    block_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        if self.tau_start < self.tau_end:
            raise ValueError("tau_start must be >= tau_end (annealing)")
        if self.tau_end <= 0:
            raise ValueError("temperatures must be positive")


@dataclass
class TwoPiSolution:
    """Result of optimizing one mask."""

    offsets: np.ndarray  # values in {0, 2 pi}
    roughness_before: float
    roughness_after: float
    history: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def reduction(self) -> float:
        """Fractional roughness reduction (the tables' headline metric)."""
        if self.roughness_before == 0:
            return 0.0
        return 1.0 - self.roughness_after / self.roughness_before

    @property
    def flipped_fraction(self) -> float:
        """Fraction of pixels assigned the 2-pi add-on."""
        return float((self.offsets > 0).mean())


class TwoPiOptimizer:
    """Gumbel-Softmax combinatorial smoothing of phase masks."""

    def __init__(self, config: TwoPiConfig = TwoPiConfig()) -> None:
        self.config = config

    def optimize_mask(self, phase: np.ndarray) -> TwoPiSolution:
        """Smooth one mask; ``phase`` is wrapped to [0, 2 pi) first.

        The optimization never changes the DONN forward function (2-pi
        periodicity) — only the fabricated topography.
        """
        cfg = self.config
        wrapped = wrap_phase(np.asarray(phase, dtype=np.float64))
        if wrapped.ndim != 2:
            raise ValueError(f"phase mask must be 2-D, got {wrapped.shape}")
        before = roughness(wrapped, k=cfg.k)
        rng = spawn_rng(cfg.seed)

        # n x n x 2 selection logits; index 1 selects the +2 pi option.
        logits = Parameter(np.zeros(wrapped.shape + (2,)))
        optimizer = Adam([logits], lr=cfg.lr)
        base = Tensor(wrapped)
        add_options = Tensor(np.array([0.0, TWO_PI]))
        decay = (cfg.tau_end / cfg.tau_start) ** (
            1.0 / max(cfg.iterations - 1, 1)
        )
        history: Dict[str, List[float]] = {"loss": [], "tau": []}

        tau = cfg.tau_start
        for _ in range(cfg.iterations):
            optimizer.zero_grad()
            selection = gumbel_softmax(logits, tau=tau, hard=cfg.hard,
                                       rng=rng)
            addon = ops.sum(selection * add_options, axis=-1)
            loss = roughness_tensor(base + addon, k=cfg.k)
            loss.backward()
            optimizer.step()
            history["loss"].append(loss.item())
            history["tau"].append(tau)
            tau = max(tau * decay, cfg.tau_end)

        selection = np.argmax(logits.data, axis=-1)
        offsets = TWO_PI * selection.astype(np.float64)
        if cfg.polish:
            offsets, _ = greedy_offsets(wrapped, k=cfg.k, init=offsets,
                                        block_size=cfg.block_size)
        after = roughness(wrapped + offsets, k=cfg.k)
        # The add-on is free (forward-invariant), so never accept a
        # degradation over the plain mask.
        if after > before:
            offsets = np.zeros_like(wrapped)
            after = before
        return TwoPiSolution(
            offsets=offsets,
            roughness_before=before,
            roughness_after=after,
            history=history,
        )

    def optimize_model(
        self, model, verify_inputs: Optional[np.ndarray] = None
    ) -> List[TwoPiSolution]:
        """Smooth every layer of a DONN; returns per-layer solutions.

        When ``verify_inputs`` (images or encoded fields) is given, the
        claimed forward invariance is checked end to end through the
        compiled inference engine and the residual is stored in each
        solution's ``history["forward_invariance_gap"]``.
        """
        solutions = [self.optimize_mask(phase) for phase in
                     model.phases(wrapped=True)]
        if verify_inputs is not None:
            gap = forward_invariance_gap(model, solutions, verify_inputs)
            for solution in solutions:
                solution.history["forward_invariance_gap"] = [gap]
        return solutions
