"""Gumbel-Softmax: differentiable sampling of discrete selections [34].

The 2-pi optimizer (Sec. III-D2) formulates "add 0 or 2 pi to each pixel"
as a one-hot selection per pixel and relaxes it with the Gumbel-Softmax
estimator so the roughness loss can be minimized by gradient descent.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..autodiff import Tensor, as_tensor
from ..autodiff import functional as F
from ..autodiff import ops
from ..autodiff.rng import gumbel

__all__ = ["gumbel_softmax"]


def gumbel_softmax(
    logits,
    tau: float = 1.0,
    hard: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Tensor:
    """Sample a relaxed one-hot vector along the last axis.

    ``y = softmax((logits + g) / tau)`` with ``g ~ Gumbel(0, 1)``.  With
    ``hard=True`` the forward value is the exact one-hot argmax while the
    gradient flows through the soft sample (straight-through estimator).

    Parameters
    ----------
    logits:
        ``(..., num_options)`` unnormalized log-probabilities.
    tau:
        Temperature; lower is closer to discrete (must be positive).
    hard:
        Straight-through hard sampling.
    rng:
        Noise stream (package default if omitted).
    """
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    logits = as_tensor(logits)
    noise = Tensor(gumbel(logits.shape, rng=rng))
    soft = F.softmax((logits + noise) * (1.0 / tau), axis=-1)
    if not hard:
        return soft
    index = np.argmax(soft.data, axis=-1)
    eye = np.eye(logits.shape[-1])
    hard_sample = eye[index]
    # Straight-through: forward = hard, backward = d soft.
    return Tensor(hard_sample - soft.data) + soft
