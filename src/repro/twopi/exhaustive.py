"""Reference solvers for the 2-pi selection problem.

These provide ground truth and a strong classical baseline against which
the Gumbel-Softmax optimizer is validated:

* :func:`brute_force_offsets` — exact minimum by enumerating all 2^m
  selections (tiny masks only);
* :func:`greedy_offsets` — coordinate descent flipping one pixel at a
  time while it improves; never worse than its starting point.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..optics.constants import TWO_PI
from ..roughness.metrics import neighbor_offsets, roughness

__all__ = ["roughness_batch", "brute_force_offsets", "greedy_offsets"]


def roughness_batch(masks: np.ndarray, k: int = 8) -> np.ndarray:
    """Vectorized Eq. 4 roughness of a ``(batch, n, m)`` stack of masks."""
    masks = np.asarray(masks, dtype=np.float64)
    if masks.ndim != 3:
        raise ValueError(f"expected (batch, n, m) stack, got {masks.shape}")
    _, n, m = masks.shape
    padded = np.pad(masks, ((0, 0), (1, 1), (1, 1)))
    total = np.zeros_like(masks)
    for dy, dx in neighbor_offsets(k):
        shifted = padded[:, 1 + dy:1 + dy + n, 1 + dx:1 + dx + m]
        diff = shifted - masks
        total += diff * diff
    per_pixel = np.sqrt(total) / k
    return per_pixel.sum(axis=(1, 2)) / 2.0


def brute_force_offsets(
    phase: np.ndarray, k: int = 8, limit: int = 16,
    chunk_size: int = 65536,
) -> Tuple[np.ndarray, float]:
    """Exact optimal {0, 2 pi} add-on mask by full enumeration.

    Only feasible for masks with at most ``limit`` pixels (2^m candidates
    are evaluated, vectorized).  Candidates are streamed in chunks of
    ``chunk_size`` — the same memory-bounding pattern as the inference
    engine's ``max_batch`` — so raising ``limit`` costs time, not peak
    memory.  Returns ``(offsets, best_roughness)``.
    """
    phase = np.asarray(phase, dtype=np.float64)
    pixels = phase.size
    if pixels > limit:
        raise ValueError(
            f"brute force limited to {limit} pixels, got {pixels}"
        )
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    count = 1 << pixels
    pixel_index = np.arange(pixels)[None, :]
    flat = phase.ravel()[None, :]
    best_score = np.inf
    best_bits: Optional[np.ndarray] = None
    for start in range(0, count, chunk_size):
        stop = min(start + chunk_size, count)
        bits = (np.arange(start, stop)[:, None] >> pixel_index) & 1
        candidates = flat + TWO_PI * bits
        scores = roughness_batch(
            candidates.reshape(stop - start, *phase.shape), k=k
        )
        winner = int(np.argmin(scores))
        if scores[winner] < best_score:
            best_score = float(scores[winner])
            best_bits = bits[winner]
    offsets = (TWO_PI * best_bits).reshape(phase.shape)
    return offsets, best_score


def _local_roughness(padded: np.ndarray, row: int, col: int, k: int) -> float:
    """Per-pixel roughness R(p) read off a 1-padded total-phase array."""
    center = padded[row + 1, col + 1]
    total = 0.0
    for dy, dx in neighbor_offsets(k):
        diff = padded[row + 1 + dy, col + 1 + dx] - center
        total += diff * diff
    return np.sqrt(total) / k


def _neighborhood_score(padded: np.ndarray, row: int, col: int, k: int,
                        shape: Tuple[int, int]) -> float:
    """Sum of R(q) over the pixel and its in-bounds neighbors."""
    score = _local_roughness(padded, row, col, k)
    for dy, dx in neighbor_offsets(k):
        r, c = row + dy, col + dx
        if 0 <= r < shape[0] and 0 <= c < shape[1]:
            score += _local_roughness(padded, r, c, k)
    return score


def greedy_offsets(
    phase: np.ndarray,
    k: int = 8,
    max_sweeps: int = 20,
    init: Optional[np.ndarray] = None,
    block_size: Optional[int] = None,
) -> Tuple[np.ndarray, float]:
    """Coordinate-descent 2-pi assignment.

    Sweeps the mask repeatedly, flipping a pixel's add-on between 0 and
    2 pi whenever the flip strictly reduces total roughness (evaluated
    locally — a flip only changes R at the pixel and its neighbors).
    Terminates at a local optimum or after ``max_sweeps``.

    ``block_size`` additionally enables whole-block flip moves on the
    given grid.  Single-pixel moves cannot lift a zeroed sparsity block
    out of its local minimum (flipping one interior pixel creates eight
    2-pi steps against its still-zero neighbors), so block moves are
    essential after block sparsification.

    Returns ``(offsets, final_roughness)``; never worse than the start.
    """
    phase = np.asarray(phase, dtype=np.float64)
    if phase.ndim != 2:
        raise ValueError(f"phase mask must be 2-D, got shape {phase.shape}")
    offsets = np.zeros_like(phase) if init is None else np.array(
        init, dtype=np.float64, copy=True)
    if offsets.shape != phase.shape:
        raise ValueError("init offsets shape mismatch")
    if block_size is not None and (
        block_size < 1 or phase.shape[0] % block_size
        or phase.shape[1] % block_size
    ):
        raise ValueError(
            f"block size {block_size} does not tile mask shape {phase.shape}"
        )
    shape = phase.shape
    padded = np.pad(phase + offsets, 1)

    def block_pass() -> bool:
        improved = False
        current_total = roughness(padded[1:-1, 1:-1], k=k)
        for top in range(0, shape[0], block_size):
            for left in range(0, shape[1], block_size):
                window = (slice(top, top + block_size),
                          slice(left, left + block_size))
                trial = offsets.copy()
                trial[window] = np.where(trial[window] > 0, 0.0, TWO_PI)
                candidate = roughness(phase + trial, k=k)
                if candidate + 1e-12 < current_total:
                    offsets[window] = trial[window]
                    padded[1:-1, 1:-1] = phase + offsets
                    current_total = candidate
                    improved = True
        return improved

    for _ in range(max_sweeps):
        improved = False
        if block_size is not None:
            improved |= block_pass()
        for row in range(shape[0]):
            for col in range(shape[1]):
                before = _neighborhood_score(padded, row, col, k, shape)
                current = offsets[row, col]
                flipped = 0.0 if current else TWO_PI
                padded[row + 1, col + 1] += flipped - current
                after = _neighborhood_score(padded, row, col, k, shape)
                if after + 1e-12 < before:
                    offsets[row, col] = flipped
                    improved = True
                else:
                    padded[row + 1, col + 1] += current - flipped
        if not improved:
            break
    return offsets, roughness(phase + offsets, k=k)
