"""Synthetic image datasets (MNIST / FMNIST / KMNIST / EMNIST stand-ins).

No network access is available at build time, so the four families are
procedurally generated 28 x 28 ten-class image sets with graded difficulty
(see DESIGN.md §1 for the substitution rationale):

* ``digits``    — MNIST-like handwritten digits;
* ``fashion``   — FMNIST-like clothing silhouettes;
* ``kuzushiji`` — KMNIST-like cursive glyphs;
* ``letters``   — EMNIST-like uppercase letters.
"""

from . import glyphs, prototypes
from .loaders import DataLoader
from .synthetic import (
    FAMILY_SPECS,
    AugmentationSpec,
    Dataset,
    make_dataset,
    render_sample,
)

#: Mapping from the paper's dataset names to synthetic family names.
PAPER_DATASET_TO_FAMILY = {
    "MNIST": "digits",
    "FMNIST": "fashion",
    "KMNIST": "kuzushiji",
    "EMNIST": "letters",
}

__all__ = [
    "glyphs",
    "prototypes",
    "DataLoader",
    "Dataset",
    "AugmentationSpec",
    "FAMILY_SPECS",
    "make_dataset",
    "render_sample",
    "PAPER_DATASET_TO_FAMILY",
]
