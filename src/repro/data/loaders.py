"""Mini-batch iteration over datasets.

A tiny DataLoader in the PyTorch mold: shuffled epochs, fixed batch size,
optional drop of the ragged tail batch.  Batches are plain numpy arrays
(images, labels); the trainer converts images to complex fields.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .synthetic import Dataset

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate ``(images, labels)`` batches over a :class:`Dataset`.

    Parameters
    ----------
    dataset:
        Source dataset.
    batch_size:
        Samples per batch (the paper uses 200).
    shuffle:
        Reshuffle sample order at the start of every epoch.
    drop_last:
        Drop the final ragged batch when the dataset size is not a
        multiple of ``batch_size``.
    seed:
        Seed of the private shuffling stream (kept separate from the
        global RNG so data order is reproducible per loader).
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if batch_size > len(dataset) and drop_last:
            raise ValueError(
                f"batch size {batch_size} exceeds dataset size "
                f"{len(dataset)} with drop_last=True; no batches would run"
            )
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self._rng = np.random.default_rng(seed)

    def state_dict(self) -> dict:
        """Snapshot the private shuffle stream (JSON-serializable).

        The loader advances its stream once per epoch; checkpoints store
        this state so a resumed fit sees the exact batch order an
        uninterrupted one would have (byte-identical histories).
        """
        return {"rng": self._rng.bit_generator.state}

    def load_state_dict(self, state: dict) -> None:
        """Restore a shuffle stream captured by :meth:`state_dict`."""
        self._rng.bit_generator.state = state["rng"]

    def __len__(self) -> int:
        """Number of batches per epoch."""
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            index = order[start:start + self.batch_size]
            if self.drop_last and len(index) < self.batch_size:
                return
            yield self.dataset.images[index], self.dataset.labels[index]
