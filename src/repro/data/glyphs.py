"""Anti-aliased glyph rasterizer for the synthetic dataset families.

The build environment has no network access, so the MNIST / FMNIST /
KMNIST / EMNIST images the paper trains on cannot be downloaded.  This
module provides the drawing substrate for procedurally generated stand-ins:
glyphs are described as small lists of primitives in normalized ``[0, 1]^2``
coordinates (x right, y down) and rasterized onto small float canvases with
soft (anti-aliased) edges.

Primitives
----------
* ``line(p0, p1)``           — straight stroke;
* ``curve(p0, p1, p2)``      — quadratic Bezier stroke;
* ``arc(center, rx, ry, a0, a1)`` — elliptical arc stroke (radians);
* ``polygon(vertices)``      — filled polygon (even-odd rule);
* ``disk(center, rx, ry)``   — filled ellipse.

Strokes are rendered via a distance field to densely sampled path points;
fills get a half-pixel soft edge.  Everything is pure numpy.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "line",
    "curve",
    "arc",
    "polygon",
    "disk",
    "transform_primitives",
    "rasterize",
]

Point = Tuple[float, float]

# Primitive encoding: ("kind", payload...).  Plain tuples keep prototypes
# declarative, hashable and trivially transformable.


def line(p0: Point, p1: Point) -> tuple:
    """Straight stroke from ``p0`` to ``p1`` (normalized coordinates)."""
    return ("line", (tuple(p0), tuple(p1)))


def curve(p0: Point, p1: Point, p2: Point) -> tuple:
    """Quadratic Bezier stroke with control point ``p1``."""
    return ("curve", (tuple(p0), tuple(p1), tuple(p2)))


def arc(center: Point, rx: float, ry: float, a0: float, a1: float) -> tuple:
    """Elliptical arc stroke from angle ``a0`` to ``a1`` (radians)."""
    return ("arc", (tuple(center), float(rx), float(ry), float(a0), float(a1)))


def polygon(vertices: Sequence[Point]) -> tuple:
    """Filled polygon (vertices in order, even-odd fill)."""
    return ("polygon", tuple(tuple(v) for v in vertices))


def disk(center: Point, rx: float, ry: float) -> tuple:
    """Filled axis-aligned ellipse."""
    return ("disk", (tuple(center), float(rx), float(ry)))


# ----------------------------------------------------------------------
# Geometry helpers
# ----------------------------------------------------------------------
def _sample_path(prim: tuple, samples_per_unit: int = 96) -> np.ndarray:
    """Sample a stroke primitive into an ``(m, 2)`` array of points."""
    kind, payload = prim
    if kind == "line":
        (p0, p1) = payload
        p0, p1 = np.asarray(p0), np.asarray(p1)
        length = float(np.linalg.norm(p1 - p0))
        m = max(2, int(length * samples_per_unit))
        t = np.linspace(0.0, 1.0, m)[:, None]
        return p0 + t * (p1 - p0)
    if kind == "curve":
        (p0, p1, p2) = (np.asarray(p) for p in payload)
        approx_len = float(
            np.linalg.norm(p1 - p0) + np.linalg.norm(p2 - p1)
        )
        m = max(3, int(approx_len * samples_per_unit))
        t = np.linspace(0.0, 1.0, m)[:, None]
        return (1 - t) ** 2 * p0 + 2 * (1 - t) * t * p1 + t ** 2 * p2
    if kind == "arc":
        (center, rx, ry, a0, a1) = payload
        cx, cy = center
        span = abs(a1 - a0)
        m = max(4, int(span * max(rx, ry) * samples_per_unit))
        theta = np.linspace(a0, a1, m)
        return np.stack(
            [cx + rx * np.cos(theta), cy + ry * np.sin(theta)], axis=1
        )
    raise ValueError(f"{kind!r} is not a stroke primitive")


def transform_primitives(
    primitives: Sequence[tuple],
    matrix: np.ndarray,
    translation: Point = (0.0, 0.0),
    center: Point = (0.5, 0.5),
) -> List[tuple]:
    """Apply an affine map ``p -> M (p - c) + c + t`` to every primitive.

    Arc primitives are converted to sampled polylines first (an ellipse
    under shear/rotation is no longer axis aligned), which keeps the
    transform exact for rendering purposes.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.shape != (2, 2):
        raise ValueError(f"affine matrix must be 2x2, got {matrix.shape}")
    center_arr = np.asarray(center, dtype=float)
    shift = np.asarray(translation, dtype=float)

    def warp(points) -> np.ndarray:
        pts = np.asarray(points, dtype=float)
        return (pts - center_arr) @ matrix.T + center_arr + shift

    result: List[tuple] = []
    for prim in primitives:
        kind, payload = prim
        if kind == "line":
            p0, p1 = warp(payload)
            result.append(line(p0, p1))
        elif kind == "curve":
            p0, p1, p2 = warp(payload)
            result.append(curve(p0, p1, p2))
        elif kind == "arc":
            pts = warp(_sample_path(prim))
            result.append(("polyline", pts))
        elif kind == "polyline":
            result.append(("polyline", warp(payload)))
        elif kind == "polygon":
            result.append(polygon(warp(payload)))
        elif kind == "disk":
            (c, rx, ry) = payload
            boundary = _sample_path(arc(c, rx, ry, 0.0, 2 * np.pi))
            result.append(polygon(warp(boundary[::4])))
        else:
            raise ValueError(f"unknown primitive kind {kind!r}")
    return result


# ----------------------------------------------------------------------
# Rasterization
# ----------------------------------------------------------------------
def _pixel_grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    axis = (np.arange(size) + 0.5) / size
    return np.meshgrid(axis, axis, indexing="xy")


def _render_stroke(points: np.ndarray, px: np.ndarray, py: np.ndarray,
                   thickness: float) -> np.ndarray:
    """Soft stroke coverage from the distance to sampled path points."""
    dx = px[..., None] - points[:, 0]
    dy = py[..., None] - points[:, 1]
    dist = np.sqrt(dx * dx + dy * dy).min(axis=-1)
    size = px.shape[0]
    half_pixel = 0.5 / size
    return np.clip((thickness / 2 + half_pixel - dist) / (2 * half_pixel),
                   0.0, 1.0)


def _render_polygon(vertices: np.ndarray, px: np.ndarray,
                    py: np.ndarray) -> np.ndarray:
    """Even-odd filled polygon with a half-pixel softened boundary."""
    vertices = np.asarray(vertices, dtype=float)
    x0, y0 = vertices[:, 0], vertices[:, 1]
    x1, y1 = np.roll(x0, -1), np.roll(y0, -1)
    # Ray casting to the right of each pixel center, vectorized over edges.
    pxe = px[..., None]
    pye = py[..., None]
    crosses = ((y0 <= pye) & (pye < y1)) | ((y1 <= pye) & (pye < y0))
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(y1 != y0, (pye - y0) / (y1 - y0), 0.0)
    intersect_x = x0 + t * (x1 - x0)
    inside = (np.sum(crosses & (intersect_x > pxe), axis=-1) % 2).astype(float)
    return inside


def _render_disk(center, rx, ry, px, py) -> np.ndarray:
    cx, cy = center
    size = px.shape[0]
    level = ((px - cx) / rx) ** 2 + ((py - cy) / ry) ** 2
    soft = 1.0 / size / min(rx, ry)
    return np.clip((1.0 + soft - level) / (2 * soft), 0.0, 1.0)


def rasterize(
    primitives: Sequence[tuple],
    size: int = 28,
    thickness: float = 0.08,
) -> np.ndarray:
    """Render primitives onto a ``size x size`` float canvas in ``[0, 1]``.

    Overlapping ink combines with ``max`` (opaque strokes), so stroke order
    is irrelevant.
    """
    if size < 4:
        raise ValueError(f"canvas size must be >= 4, got {size}")
    if thickness <= 0:
        raise ValueError(f"stroke thickness must be positive, got {thickness}")
    px, py = _pixel_grid(size)
    canvas = np.zeros((size, size), dtype=np.float64)
    for prim in primitives:
        kind, payload = prim
        if kind in ("line", "curve", "arc"):
            layer = _render_stroke(_sample_path(prim), px, py, thickness)
        elif kind == "polyline":
            layer = _render_stroke(np.asarray(payload), px, py, thickness)
        elif kind == "polygon":
            layer = _render_polygon(np.asarray(payload), px, py)
        elif kind == "disk":
            (center, rx, ry) = payload
            layer = _render_disk(center, rx, ry, px, py)
        else:
            raise ValueError(f"unknown primitive kind {kind!r}")
        np.maximum(canvas, layer, out=canvas)
    return canvas
