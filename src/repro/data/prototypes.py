"""Class prototypes for the four synthetic dataset families.

Each family provides ten classes (matching the DONN's ten detector
regions).  Prototypes are declarative primitive lists in normalized
coordinates; per-sample variation (affine jitter, control-point noise,
stroke-width changes, pixel noise) is applied by
:mod:`repro.data.synthetic`.

Families and the paper datasets they stand in for:

* ``digits``    — MNIST: handwritten digits 0-9;
* ``fashion``   — FMNIST: clothing silhouettes (filled shapes, several
  visually similar classes — the hardest family, as in the paper);
* ``kuzushiji`` — KMNIST: cursive multi-stroke glyphs (high variability);
* ``letters``   — EMNIST: uppercase letters A-J.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .glyphs import arc, curve, disk, line, polygon

__all__ = ["FAMILIES", "class_names", "prototype"]

PI = np.pi

_DIGITS: List[Sequence[tuple]] = [
    # 0
    [arc((0.5, 0.5), 0.26, 0.37, 0.0, 2 * PI)],
    # 1
    [line((0.38, 0.26), (0.52, 0.12)), line((0.52, 0.12), (0.52, 0.88))],
    # 2
    [curve((0.27, 0.32), (0.5, 0.02), (0.72, 0.33)),
     curve((0.72, 0.33), (0.68, 0.55), (0.27, 0.86)),
     line((0.27, 0.86), (0.76, 0.86))],
    # 3
    [curve((0.3, 0.18), (0.72, 0.08), (0.62, 0.44)),
     line((0.62, 0.44), (0.45, 0.48)),
     curve((0.45, 0.48), (0.85, 0.55), (0.6, 0.82)),
     curve((0.6, 0.82), (0.45, 0.95), (0.27, 0.8))],
    # 4
    [line((0.62, 0.12), (0.24, 0.62)), line((0.24, 0.62), (0.8, 0.62)),
     line((0.63, 0.34), (0.63, 0.9))],
    # 5
    [line((0.72, 0.12), (0.32, 0.12)), line((0.32, 0.12), (0.29, 0.46)),
     curve((0.29, 0.46), (0.78, 0.38), (0.7, 0.68)),
     curve((0.7, 0.68), (0.6, 0.95), (0.26, 0.8))],
    # 6
    [curve((0.64, 0.1), (0.32, 0.25), (0.3, 0.6)),
     arc((0.5, 0.66), 0.21, 0.21, 0.0, 2 * PI)],
    # 7
    [line((0.25, 0.14), (0.75, 0.14)), line((0.75, 0.14), (0.42, 0.88))],
    # 8
    [arc((0.5, 0.3), 0.19, 0.17, 0.0, 2 * PI),
     arc((0.5, 0.67), 0.23, 0.2, 0.0, 2 * PI)],
    # 9
    [arc((0.5, 0.34), 0.21, 0.2, 0.0, 2 * PI),
     curve((0.71, 0.38), (0.7, 0.7), (0.4, 0.88))],
]

_LETTERS: List[Sequence[tuple]] = [
    # A
    [line((0.5, 0.1), (0.24, 0.88)), line((0.5, 0.1), (0.76, 0.88)),
     line((0.35, 0.6), (0.65, 0.6))],
    # B
    [line((0.3, 0.12), (0.3, 0.88)),
     curve((0.3, 0.12), (0.78, 0.16), (0.3, 0.48)),
     curve((0.3, 0.48), (0.85, 0.55), (0.3, 0.88))],
    # C
    [arc((0.55, 0.5), 0.28, 0.37, 0.35 * PI, 1.65 * PI)],
    # D
    [line((0.3, 0.12), (0.3, 0.88)),
     curve((0.3, 0.12), (0.85, 0.5), (0.3, 0.88))],
    # E
    [line((0.32, 0.12), (0.32, 0.88)), line((0.32, 0.12), (0.74, 0.12)),
     line((0.32, 0.5), (0.66, 0.5)), line((0.32, 0.88), (0.74, 0.88))],
    # F
    [line((0.32, 0.12), (0.32, 0.88)), line((0.32, 0.12), (0.74, 0.12)),
     line((0.32, 0.5), (0.66, 0.5))],
    # G
    [arc((0.53, 0.5), 0.28, 0.37, 0.3 * PI, 1.75 * PI),
     line((0.55, 0.55), (0.81, 0.55)), line((0.81, 0.55), (0.81, 0.78))],
    # H
    [line((0.3, 0.12), (0.3, 0.88)), line((0.7, 0.12), (0.7, 0.88)),
     line((0.3, 0.5), (0.7, 0.5))],
    # I
    [line((0.5, 0.12), (0.5, 0.88)), line((0.36, 0.12), (0.64, 0.12)),
     line((0.36, 0.88), (0.64, 0.88))],
    # J
    [line((0.42, 0.12), (0.78, 0.12)), line((0.62, 0.12), (0.62, 0.68)),
     curve((0.62, 0.68), (0.58, 0.95), (0.28, 0.78))],
]

_FASHION: List[Sequence[tuple]] = [
    # t-shirt
    [polygon([(0.18, 0.24), (0.36, 0.16), (0.44, 0.2), (0.56, 0.2),
              (0.64, 0.16), (0.82, 0.24), (0.74, 0.42), (0.66, 0.37),
              (0.66, 0.82), (0.34, 0.82), (0.34, 0.37), (0.26, 0.42)])],
    # trouser
    [polygon([(0.33, 0.14), (0.67, 0.14), (0.72, 0.86), (0.55, 0.86),
              (0.5, 0.46), (0.45, 0.86), (0.28, 0.86)])],
    # pullover
    [polygon([(0.16, 0.3), (0.34, 0.15), (0.66, 0.15), (0.84, 0.3),
              (0.8, 0.62), (0.67, 0.56), (0.67, 0.85), (0.33, 0.85),
              (0.33, 0.56), (0.2, 0.62)])],
    # dress
    [polygon([(0.42, 0.1), (0.58, 0.1), (0.6, 0.32), (0.78, 0.88),
              (0.22, 0.88), (0.4, 0.32)])],
    # coat
    [polygon([(0.18, 0.26), (0.38, 0.13), (0.5, 0.22), (0.62, 0.13),
              (0.82, 0.26), (0.78, 0.88), (0.53, 0.88), (0.5, 0.4),
              (0.47, 0.88), (0.22, 0.88)])],
    # sandal
    [polygon([(0.12, 0.68), (0.88, 0.68), (0.88, 0.8), (0.12, 0.8)]),
     line((0.25, 0.68), (0.45, 0.4)), line((0.45, 0.4), (0.65, 0.68)),
     line((0.32, 0.55), (0.6, 0.55))],
    # shirt (t-shirt silhouette + collar/button detail)
    [polygon([(0.2, 0.26), (0.38, 0.18), (0.46, 0.24), (0.54, 0.24),
              (0.62, 0.18), (0.8, 0.26), (0.73, 0.44), (0.65, 0.4),
              (0.65, 0.84), (0.35, 0.84), (0.35, 0.4), (0.27, 0.44)]),
     line((0.5, 0.3), (0.5, 0.8))],
    # sneaker
    [polygon([(0.1, 0.7), (0.9, 0.7), (0.9, 0.82), (0.1, 0.82)]),
     polygon([(0.14, 0.7), (0.3, 0.44), (0.52, 0.44), (0.66, 0.56),
              (0.88, 0.7)])],
    # bag
    [polygon([(0.18, 0.42), (0.82, 0.42), (0.78, 0.86), (0.22, 0.86)]),
     arc((0.5, 0.42), 0.16, 0.18, PI, 2 * PI)],
    # ankle boot
    [polygon([(0.26, 0.16), (0.52, 0.16), (0.52, 0.52), (0.78, 0.6),
              (0.86, 0.82), (0.16, 0.82), (0.26, 0.55)])],
]


def _kuzushiji_prototypes() -> List[Sequence[tuple]]:
    """Ten deterministic cursive multi-stroke glyphs.

    Each class is a fixed set of 2-4 random smooth Bezier strokes drawn
    from a class-seeded generator — visually reminiscent of Kuzushiji
    characters and, like KMNIST, harder than digits because strokes of
    different classes overlap heavily in pixel space.
    """
    prototypes: List[Sequence[tuple]] = []
    for label in range(10):
        rng = np.random.default_rng(7000 + label)
        strokes = []
        for _ in range(2 + int(rng.integers(0, 3))):
            pts = rng.uniform(0.15, 0.85, size=(3, 2))
            strokes.append(curve(pts[0], pts[1], pts[2]))
        prototypes.append(strokes)
    return prototypes


_KUZUSHIJI = _kuzushiji_prototypes()

#: family name -> (list of per-class primitive lists, class names)
FAMILIES: Dict[str, tuple] = {
    "digits": (_DIGITS, [str(d) for d in range(10)]),
    "fashion": (
        _FASHION,
        ["tshirt", "trouser", "pullover", "dress", "coat",
         "sandal", "shirt", "sneaker", "bag", "boot"],
    ),
    "kuzushiji": (_KUZUSHIJI, [f"ku{k}" for k in range(10)]),
    "letters": (_LETTERS, list("ABCDEFGHIJ")),
}


def prototype(family: str, label: int) -> Sequence[tuple]:
    """Primitive list of class ``label`` in ``family``."""
    if family not in FAMILIES:
        raise KeyError(
            f"unknown family {family!r}; available: {sorted(FAMILIES)}"
        )
    protos, _ = FAMILIES[family]
    return protos[label]


def class_names(family: str) -> List[str]:
    """Human-readable class names of ``family``."""
    if family not in FAMILIES:
        raise KeyError(
            f"unknown family {family!r}; available: {sorted(FAMILIES)}"
        )
    return list(FAMILIES[family][1])
