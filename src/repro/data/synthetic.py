"""Synthetic dataset families standing in for MNIST / FMNIST / KMNIST / EMNIST.

Substitution rationale (see DESIGN.md §1): the paper's experiments measure
*relative* accuracy/roughness trade-offs between training recipes.  The
synthetic families keep the exact data interface (28 x 28 grayscale, ten
classes) and graded difficulty, so every code path of the reproduction is
exercised with the same shapes and trends.

Per-sample generation: take the class prototype, jitter its control points,
apply a random affine distortion (rotation / scale / shear / translation),
rasterize with a jittered stroke width, then add intensity scaling and pixel
noise.  Family difficulty is controlled by the jitter magnitudes, tuned so
laptop-scale DONN accuracies order like the paper's
(digits > letters > fashion ~ kuzushiji).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from . import prototypes as proto
from .glyphs import rasterize, transform_primitives

__all__ = ["AugmentationSpec", "Dataset", "make_dataset", "render_sample",
           "FAMILY_SPECS"]


@dataclass(frozen=True)
class AugmentationSpec:
    """Magnitudes of per-sample variation for one dataset family."""

    rotation_std: float = 0.12       # radians
    scale_std: float = 0.08
    shear_std: float = 0.06
    translation_std: float = 0.04    # normalized units
    point_jitter: float = 0.015      # control-point noise, normalized units
    thickness: float = 0.075
    thickness_jitter: float = 0.018
    noise_std: float = 0.04          # additive pixel noise
    intensity_range: Tuple[float, float] = (0.85, 1.0)


#: Tuned difficulty per family (paper ordering: MNIST easiest, FMNIST /
#: KMNIST hardest).
FAMILY_SPECS: Dict[str, AugmentationSpec] = {
    "digits": AugmentationSpec(),
    "letters": AugmentationSpec(rotation_std=0.16, point_jitter=0.02,
                                noise_std=0.05),
    "fashion": AugmentationSpec(rotation_std=0.1, scale_std=0.1,
                                shear_std=0.1, point_jitter=0.025,
                                noise_std=0.07),
    "kuzushiji": AugmentationSpec(rotation_std=0.2, point_jitter=0.035,
                                  thickness_jitter=0.025, noise_std=0.07),
}


@dataclass
class Dataset:
    """A labeled image set: ``images (n, s, s)`` float64 in [0, 1]."""

    images: np.ndarray
    labels: np.ndarray
    family: str
    class_names: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"{len(self.images)} images vs {len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.images)

    @property
    def num_classes(self) -> int:
        return len(self.class_names) if self.class_names else 10

    @property
    def image_size(self) -> int:
        return self.images.shape[-1]

    def subset(self, indices) -> "Dataset":
        """Return a view-like dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return Dataset(self.images[indices], self.labels[indices],
                       self.family, list(self.class_names))


def _random_affine(spec: AugmentationSpec,
                   rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
    angle = rng.normal(0.0, spec.rotation_std)
    scale = 1.0 + rng.normal(0.0, spec.scale_std)
    scale = float(np.clip(scale, 0.6, 1.4))
    shear = rng.normal(0.0, spec.shear_std)
    rotation = np.array(
        [[np.cos(angle), -np.sin(angle)], [np.sin(angle), np.cos(angle)]]
    )
    shear_m = np.array([[1.0, shear], [0.0, 1.0]])
    matrix = scale * rotation @ shear_m
    translation = rng.normal(0.0, spec.translation_std, size=2)
    return matrix, translation


def _jitter_points(primitives, amount: float, rng: np.random.Generator):
    """Perturb every control point / vertex independently."""
    if amount <= 0:
        return list(primitives)
    jittered = []
    for kind, payload in primitives:
        if kind in ("line", "curve"):
            pts = [tuple(np.asarray(p) + rng.normal(0, amount, 2))
                   for p in payload]
            jittered.append((kind, tuple(pts)))
        elif kind == "arc":
            (center, rx, ry, a0, a1) = payload
            center = tuple(np.asarray(center) + rng.normal(0, amount, 2))
            rx = max(0.02, rx + rng.normal(0, amount))
            ry = max(0.02, ry + rng.normal(0, amount))
            jittered.append((kind, (center, rx, ry, a0, a1)))
        elif kind == "polygon":
            pts = np.asarray(payload) + rng.normal(0, amount,
                                                   (len(payload), 2))
            jittered.append((kind, tuple(map(tuple, pts))))
        else:
            jittered.append((kind, payload))
    return jittered


def render_sample(
    family: str,
    label: int,
    rng: np.random.Generator,
    image_size: int = 28,
    spec: Optional[AugmentationSpec] = None,
) -> np.ndarray:
    """Generate one augmented image of class ``label``."""
    spec = spec or FAMILY_SPECS[family]
    primitives = proto.prototype(family, label)
    primitives = _jitter_points(primitives, spec.point_jitter, rng)
    matrix, translation = _random_affine(spec, rng)
    primitives = transform_primitives(primitives, matrix, translation)
    thickness = max(
        0.03, spec.thickness + rng.normal(0.0, spec.thickness_jitter)
    )
    image = rasterize(primitives, size=image_size, thickness=thickness)
    low, high = spec.intensity_range
    image = image * rng.uniform(low, high)
    image = image + rng.normal(0.0, spec.noise_std, image.shape)
    return np.clip(image, 0.0, 1.0)


def make_dataset(
    family: str,
    n_train: int,
    n_test: int,
    seed: int = 0,
    image_size: int = 28,
    spec: Optional[AugmentationSpec] = None,
) -> Tuple[Dataset, Dataset]:
    """Generate a balanced train/test pair for ``family``.

    Classes are dealt round-robin so every class has within-one-sample
    balanced counts.  Train and test use independent random streams derived
    from ``seed``, so they never share samples.
    """
    if family not in proto.FAMILIES:
        raise KeyError(
            f"unknown family {family!r}; available: {sorted(proto.FAMILIES)}"
        )
    if n_train < 1 or n_test < 1:
        raise ValueError("n_train and n_test must be positive")
    names = proto.class_names(family)

    def build(count: int, stream_seed: int) -> Dataset:
        rng = np.random.default_rng(stream_seed)
        images = np.empty((count, image_size, image_size), dtype=np.float64)
        labels = np.empty(count, dtype=np.int64)
        order = np.arange(count) % len(names)
        rng.shuffle(order)
        for i, label in enumerate(order):
            images[i] = render_sample(family, int(label), rng,
                                      image_size=image_size, spec=spec)
            labels[i] = label
        return Dataset(images, labels, family, list(names))

    family_key = zlib.crc32(family.encode("utf-8"))
    mix = np.random.SeedSequence([family_key, seed])
    train_seed, test_seed = mix.spawn(2)
    train = build(n_train, train_seed)
    test = build(n_test, test_seed)
    return train, test
